package actor

import (
	"context"
	"fmt"
	"math"
	"os"

	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/pmu"
)

// Meta is the self-describing header of a bank: everything a serving
// process needs to use the predictors correctly without out-of-band
// knowledge.
type Meta struct {
	// Version is the serialization format version (BankVersion when the
	// bank was produced by this build).
	Version int `json:"version"`
	// Kind is the model family ("ann" or "mlr").
	Kind Kind `json:"kind"`
	// Topology is the compact descriptor of the machine the bank was
	// trained for ("" means the paper's quad-core Xeon).
	Topology string `json:"topology,omitempty"`
	// TopologyName and Cores describe the machine for humans.
	TopologyName string `json:"topology_name,omitempty"`
	Cores        int    `json:"cores,omitempty"`
	// Seed is the training seed.
	Seed int64 `json:"seed"`
	// Folds is the cross-validation ensemble size (0 for MLR banks).
	Folds int `json:"folds,omitempty"`
	// Configs is the configuration space, in canonical order; the last
	// entry is the maximal-concurrency sampling configuration.
	Configs []string `json:"configs"`
	// SampleConfig is the configuration counters are sampled at.
	SampleConfig string `json:"sample_config"`
	// EventSets lists each predictor's feature events (richest first).
	EventSets [][]string `json:"event_sets,omitempty"`
	// Generation counts online recalibrations: 0 for an offline-trained
	// bank, incremented each time actord promotes a retrained candidate.
	Generation int `json:"generation,omitempty"`
	// Provenance records how a recalibrated generation came to be; nil on
	// offline-trained banks and on banks saved by older builds.
	Provenance *Provenance `json:"provenance,omitempty"`
}

// Provenance is the audit record of one promoted recalibration: which
// generation it grew from, what tripped the retrain, how much data trained
// and validated it, and the holdout errors the promotion decision compared.
// It deliberately excludes wall-clock timestamps and canary tallies so a
// recalibrated bank's bytes are a pure function of the training seed chain.
type Provenance struct {
	// Parent is the generation this bank was warm-started from.
	Parent int `json:"parent"`
	// Trigger is what started the retrain: "manual", or "drift:" plus the
	// detector's reason.
	Trigger string `json:"trigger,omitempty"`
	// TrainSamples and HoldoutSamples count the recalibration campaign's
	// split.
	TrainSamples   int `json:"train_samples"`
	HoldoutSamples int `json:"holdout_samples"`
	// CandidateErr and LiveErr are the holdout median relative errors of
	// the candidate and the then-live bank; Margin is the relative
	// improvement the candidate had to clear.
	CandidateErr float64 `json:"candidate_err"`
	LiveErr      float64 `json:"live_err"`
	Margin       float64 `json:"margin"`
}

// Bank is a trained predictor bank plus its platform metadata. Banks are
// safe for concurrent use: prediction allocates only its result slice.
type Bank struct {
	bank *core.Bank
	// preds is the bank's predictor list (richest first), cached here so
	// the per-request selection never copies it.
	preds []core.Predictor
	meta  Meta
}

// newBank wraps a trained core bank, deriving the per-predictor event sets.
func newBank(cb *core.Bank, meta Meta) *Bank {
	preds := cb.Predictors()
	for _, p := range preds {
		names := make([]string, 0, p.NumEvents())
		for _, e := range p.Events() {
			names = append(names, e.String())
		}
		meta.EventSets = append(meta.EventSets, names)
	}
	return &Bank{bank: cb, preds: preds, meta: meta}
}

// Meta returns the bank's self-describing header.
func (b *Bank) Meta() Meta { return b.meta }

// Select returns the feature event names of the richest predictor whose
// counter rotation fits within maxRounds sampling timesteps on a PMU that
// can program width events simultaneously — the paper's reduced-event-set
// fallback, exposed so callers can plan their sampling.
func (b *Bank) Select(maxRounds, width int) []string {
	p := b.bank.Select(maxRounds, width)
	names := make([]string, 0, p.NumEvents())
	for _, e := range p.Events() {
		names = append(names, e.String())
	}
	return names
}

// Predict maps observed rates to ranked configuration predictions, best
// first. The richest predictor whose feature events are all present in
// rates is used — a client that sampled only a reduced event set (see
// Select) is served by the matching reduced predictor, the paper's
// short-iteration fallback. When no predictor is fully covered the richest
// one runs with absent events reading zero (the model's documented
// treatment of unmeasured features). Every target configuration gets a
// predicted IPC, and when rates carry an "IPC" entry the sampling
// configuration joins the ranking with its directly observed IPC (marked
// Observed) — exactly the comparison the runtime's decision step makes.
func (b *Bank) Predict(ctx context.Context, rates Rates) ([]Prediction, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pr, err := rates.toPMU()
	if err != nil {
		return nil, err
	}
	return b.predictPMU(pr)
}

// predictPMU is Predict past mnemonic resolution: rank every target
// configuration for already-resolved event rates. The serving fast path
// calls this directly with a pooled pmu.Rates it fills itself, skipping
// the per-request map toPMU would build.
func (b *Bank) predictPMU(pr pmu.Rates) ([]Prediction, error) {
	pred := b.predictorFor(pr)
	byConfig, err := pred.PredictIPC(pr)
	if err != nil {
		return nil, err
	}
	out := make([]Prediction, 0, len(byConfig)+1)
	for name, ipc := range byConfig {
		out = append(out, Prediction{Config: name, IPC: ipc})
	}
	if obs, ok := pr[pmu.Instructions]; ok {
		out = append(out, Prediction{Config: b.meta.SampleConfig, IPC: obs, Observed: true})
	}
	rankPredictions(out)
	return out, nil
}

// predictorFor returns the richest predictor whose every feature event is
// present in pr, falling back to the richest predictor overall. Predictors
// are ordered by descending event count, so the first covered one wins.
func (b *Bank) predictorFor(pr pmu.Rates) core.Predictor {
	for _, p := range b.preds {
		covered := true
		for _, e := range p.Events() {
			if _, ok := pr[e]; !ok {
				covered = false
				break
			}
		}
		if covered {
			return p
		}
	}
	return b.preds[0]
}

// disagreement is the label-free prediction-error proxy the recalibration
// observer records per request: the mean relative gap between the richest
// and the most-reduced predictor's IPC predictions across the target
// configurations. Live traffic carries no ground-truth IPC for the target
// configs, but the two predictors were trained on the same campaign — when
// traffic drifts off that campaign's distribution their extrapolations
// diverge, so the gap rises with model staleness. Zero for single-predictor
// banks. Deterministic: configs are walked in canonical meta order.
func (b *Bank) disagreement(pr pmu.Rates) float64 {
	if len(b.preds) < 2 {
		return 0
	}
	rich, err := b.preds[0].PredictIPC(pr)
	if err != nil {
		return 0
	}
	red, err := b.preds[len(b.preds)-1].PredictIPC(pr)
	if err != nil {
		return 0
	}
	var sum float64
	n := 0
	for _, cfg := range b.meta.Configs {
		r, ok := rich[cfg]
		if !ok {
			continue
		}
		d, ok := red[cfg]
		if !ok {
			continue
		}
		den := math.Abs(r)
		if den < 1e-9 {
			den = 1e-9
		}
		sum += math.Abs(r-d) / den
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BestConfig returns the single best configuration for the observed rates:
// the top entry of Predict's ranking.
func (b *Bank) BestConfig(ctx context.Context, rates Rates) (Prediction, error) {
	ranked, err := b.Predict(ctx, rates)
	if err != nil {
		return Prediction{}, err
	}
	if len(ranked) == 0 {
		return Prediction{}, fmt.Errorf("actor: bank produced no predictions")
	}
	return ranked[0], nil
}

// Save writes the bank to path in the versioned serialization format.
func (b *Bank) Save(path string) error {
	data, err := b.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadBank reads a bank written by Save, rejecting files that are not
// banks, banks of unsupported versions, and structurally corrupt banks
// with descriptive errors.
func LoadBank(path string) (*Bank, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b, err := DecodeBank(data)
	if err != nil {
		return nil, fmt.Errorf("actor: loading bank %s: %w", path, err)
	}
	return b, nil
}
