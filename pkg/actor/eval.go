package actor

import (
	"fmt"
	"strconv"
	"sync"
)

// This file is the wire contract of distributed sweep evaluation: the
// /v1/eval payload a coordinator (internal/dist, cmd/actorctl) posts to a
// worker actord, and the shard fingerprint that makes delivery idempotent.
//
// A distributed run partitions the engine's canonical workload — the
// (benchmark, phase) unit list returned by Engine.Workload — into shards.
// Each shard names its slice of units plus the platform identity (topology
// descriptor, seed, bank format version) the coordinator evaluated it
// against, so a worker serving a different bank rejects the shard instead
// of silently answering for the wrong machine. Results are deterministic:
// any worker with the same platform identity returns bit-identical rows,
// which is what lets the coordinator retry, hedge and re-deliver freely.

// ShardSpec identifies one shard of a distributed sweep.
type ShardSpec struct {
	// Index is the shard's position in the canonical partition order; the
	// coordinator merges results by this index regardless of arrival order.
	Index int `json:"index"`
	// Total is the number of shards in the partition.
	Total int `json:"total"`
	// Fingerprint is ShardFingerprint over the platform identity and the
	// shard's unit list — the idempotency key for re-delivery, and an
	// end-to-end integrity check on the request.
	Fingerprint string `json:"fingerprint"`
}

// EvalRequest is the /v1/eval payload: one shard of a distributed sweep.
type EvalRequest struct {
	// Topology is the coordinator's topology descriptor; the worker rejects
	// the shard unless it matches its own engine's platform.
	Topology string `json:"topology,omitempty"`
	// Seed is the platform seed (the bank's training seed).
	Seed int64 `json:"seed"`
	// BankVersion is the bank serialization format version the coordinator
	// expects the worker to serve.
	BankVersion int `json:"bank_version"`
	// Shard locates this request within the partition.
	Shard ShardSpec `json:"shard"`
	// Units are the (benchmark, phase) work items of this shard, in
	// canonical workload order.
	Units []SweepRequest `json:"units"`
}

// EvalResponse is the /v1/eval reply: one PhaseSweep per unit, in unit
// order, echoing the shard fingerprint so hedged duplicates can be matched
// to their shard by content rather than by connection.
type EvalResponse struct {
	Fingerprint string       `json:"fingerprint"`
	Sweeps      []PhaseSweep `json:"sweeps"`
}

// ShardFingerprint derives a shard's stable identity: FNV-1a over the
// platform identity (topology descriptor, seed) and the unit list. The same
// (platform, units) pair always yields the same fingerprint, independent of
// shard index or worker — it is the key duplicate deliveries and hedged
// responses are deduplicated by.
func ShardFingerprint(topology string, seed int64, units []SweepRequest) string {
	h := uint64(1469598103934665603)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff // field separator so ("ab","c") != ("a","bc")
		h *= 1099511628211
	}
	mix(topology)
	mix(strconv.FormatInt(seed, 10))
	for _, u := range units {
		mix(u.Bench)
		for _, p := range u.Phases {
			mix(p)
		}
	}
	return strconv.FormatUint(h, 16)
}

// Fingerprint computes the request's expected shard fingerprint from its
// own platform identity and units.
func (r *EvalRequest) Fingerprint() string {
	return ShardFingerprint(r.Topology, r.Seed, r.Units)
}

// Workload returns the canonical unit list of the engine's full sweep
// workload: one single-phase SweepRequest per (benchmark, phase), benchmarks
// in suite order, phases in program order. Concatenating per-unit sweep
// results in this order is byte-identical to sweeping every benchmark
// in-process — the invariant distributed evaluation is built on.
func (e *Engine) Workload() []SweepRequest {
	var units []SweepRequest
	for _, b := range e.suite.Benches {
		for pi := range b.Phases {
			units = append(units, SweepRequest{Bench: b.Name, Phases: []string{b.Phases[pi].Name}})
		}
	}
	return units
}

// Seed returns the seed the engine's platform was built with.
func (e *Engine) Seed() int64 { return e.cfg.seed }

// evalCache is the worker-side idempotency cache: fingerprint → the fully
// encoded /v1/eval response body, so a re-delivered or hedged shard costs
// one Write instead of a re-encode. Results are deterministic, so the
// cache only saves recomputation; correctness never depends on a hit.
// Bounded FIFO.
type evalCache struct {
	mu    sync.Mutex
	limit int
	order []string
	byFP  map[string][]byte
}

func newEvalCache(limit int) *evalCache {
	return &evalCache{limit: limit, byFP: make(map[string][]byte, limit)}
}

func (c *evalCache) get(fp string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.byFP[fp]
	return s, ok
}

func (c *evalCache) put(fp string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byFP[fp]; ok {
		return
	}
	if len(c.order) >= c.limit {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.byFP, oldest)
	}
	c.order = append(c.order, fp)
	c.byFP[fp] = body
}

// validateEval checks an EvalRequest against the serving platform; the
// returned error is a client error (HTTP 400/409 class).
func (s *Server) validateEval(req *EvalRequest) error {
	if len(req.Units) == 0 {
		return fmt.Errorf(`bad payload: "units" is required and must be non-empty`)
	}
	meta := s.Bank().Meta()
	if req.Topology != s.eng.TopologyDesc() {
		return fmt.Errorf("shard was partitioned for topology %q, this worker serves %q",
			describeDesc(req.Topology), describeDesc(s.eng.TopologyDesc()))
	}
	if req.Seed != meta.Seed {
		return fmt.Errorf("shard was partitioned for seed %d, this worker's bank was trained with seed %d",
			req.Seed, meta.Seed)
	}
	if req.BankVersion != 0 && req.BankVersion != meta.Version {
		return fmt.Errorf("shard expects bank format version %d, this worker serves version %d",
			req.BankVersion, meta.Version)
	}
	if want := req.Fingerprint(); req.Shard.Fingerprint != want {
		return fmt.Errorf("shard fingerprint %q does not match its contents (want %s): corrupt or truncated delivery",
			req.Shard.Fingerprint, want)
	}
	return nil
}
