package actor

import (
	"flag"
	"fmt"
)

// Flags is the command-line surface shared by the cmd/ entry points
// (actor-train, actor-predict, actorsim, actord): the platform and
// training options plus the bank path, bound once and validated in one
// place instead of re-implemented per main.
type Flags struct {
	// Seed drives every stochastic component.
	Seed int64
	// Fast selects reduced-fidelity training (see WithFast).
	Fast bool
	// Topology is a compact topology descriptor ("" = the paper's
	// quad-core Xeon).
	Topology string
	// Folds is the cross-validation ensemble size (0 = option default).
	Folds int
	// Bank is the path of a serialized bank (actor-train writes it,
	// actor-predict and actord read it).
	Bank string
	// MLR trains the linear-regression baseline instead of ANN ensembles.
	MLR bool
}

// FlagGroup names a subset of the shared flags, so each command registers
// only the flags it actually honours (actorsim has no bank, actor-predict
// no training knobs).
type FlagGroup int

const (
	// FlagsPlatform binds -seed, -fast, -topology and -folds.
	FlagsPlatform FlagGroup = iota
	// FlagsBank binds -bank.
	FlagsBank
	// FlagsKind binds -mlr.
	FlagsKind
)

// BindFlags registers the named flag groups on fs (all groups when none
// are given) and returns the destination struct; read it after fs.Parse.
func BindFlags(fs *flag.FlagSet, groups ...FlagGroup) *Flags {
	if len(groups) == 0 {
		groups = []FlagGroup{FlagsPlatform, FlagsBank, FlagsKind}
	}
	f := &Flags{Seed: 42, Bank: "models/bank.json"}
	for _, g := range groups {
		switch g {
		case FlagsPlatform:
			fs.Int64Var(&f.Seed, "seed", f.Seed, "experiment/training seed")
			fs.BoolVar(&f.Fast, "fast", false, "use reduced-fidelity training options")
			fs.StringVar(&f.Topology, "topology", "",
				`topology descriptor, e.g. "16x2" or "16x4+32x2:little" (default: the paper's quad-core Xeon)`)
			fs.IntVar(&f.Folds, "folds", 0, "cross-validation folds (0 = option default: 10, or 5 with -fast)")
		case FlagsBank:
			fs.StringVar(&f.Bank, "bank", f.Bank, "path of the serialized predictor bank")
		case FlagsKind:
			fs.BoolVar(&f.MLR, "mlr", false, "train the linear-regression baseline instead of ANN ensembles")
		}
	}
	return f
}

// Options converts the parsed flags into engine options.
func (f *Flags) Options() []Option {
	opts := []Option{WithSeed(f.Seed)}
	if f.Fast {
		opts = append(opts, WithFast())
	}
	if f.Topology != "" {
		opts = append(opts, WithTopology(f.Topology))
	}
	if f.Folds > 0 {
		opts = append(opts, WithFolds(f.Folds))
	}
	if f.MLR {
		opts = append(opts, WithMLR())
	}
	return opts
}

// Engine builds an Engine from the parsed flags (topology descriptor
// validation happens here).
func (f *Flags) Engine() (*Engine, error) {
	return New(f.Options()...)
}

// LoadBank loads the bank at the -bank path.
func (f *Flags) LoadBank() (*Bank, error) {
	if f.Bank == "" {
		return nil, fmt.Errorf("actor: no bank path given (-bank)")
	}
	return LoadBank(f.Bank)
}
