package actor_test

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/greenhpc/actor/pkg/actor"
)

// testRates builds a rate map covering the bank's richest event set plus
// the observed IPC, with distinct values per event.
func testRates(b *actor.Bank, ipc float64) actor.Rates {
	r := actor.Rates{"IPC": ipc}
	for i, name := range b.Meta().EventSets[0] {
		r[name] = 0.001 * float64(i+1)
	}
	return r
}

// TestBankRoundTripANN trains a small ANN bank on the paper platform and
// checks that saving and loading it produces bit-identical predictions.
func TestBankRoundTripANN(t *testing.T) {
	eng, err := actor.New(
		actor.WithFast(),
		actor.WithFolds(3),
		actor.WithRepetitions(1),
		actor.WithMaxEpochs(8),
		actor.WithEventCounts(4, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bank, err := eng.Train(ctx)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bank.json")
	if err := bank.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := actor.LoadBank(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Meta(), bank.Meta()) {
		t.Errorf("metadata changed across the round trip:\nsaved:  %+v\nloaded: %+v", bank.Meta(), loaded.Meta())
	}
	for _, ipc := range []float64{0.4, 1.1, 2.7} {
		rates := testRates(bank, ipc)
		want, err := bank.Predict(ctx, rates)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Predict(ctx, rates)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("predictions changed across the round trip at IPC %g:\nsaved:  %+v\nloaded: %+v", ipc, want, got)
		}
	}
	// A second encode of the loaded bank must reproduce the bytes exactly.
	a, err := bank.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("re-encoding a loaded bank produced different bytes")
	}
}

// TestPredictorSelectionByCoverage checks that rates covering only a
// reduced event set are served by the matching reduced predictor — the
// paper's short-iteration fallback — rather than the richest predictor
// with zero-filled features.
func TestPredictorSelectionByCoverage(t *testing.T) {
	eng, err := actor.New(
		actor.WithFast(),
		actor.WithFolds(3),
		actor.WithRepetitions(1),
		actor.WithMaxEpochs(8),
		actor.WithEventCounts(4, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bank, err := eng.Train(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sets := bank.Meta().EventSets
	if len(sets) != 2 || len(sets[0]) != 4 || len(sets[1]) != 2 {
		t.Fatalf("event sets = %v, want a 4-set and a 2-set", sets)
	}
	// Rates covering exactly the reduced set…
	reduced := actor.Rates{"IPC": 1.0}
	for i, name := range sets[1] {
		reduced[name] = 0.002 * float64(i+1)
	}
	fromReduced, err := bank.Predict(ctx, reduced)
	if err != nil {
		t.Fatal(err)
	}
	// …versus the same values zero-padded to cover the rich set, which
	// forces the rich predictor. Different models ⇒ different outputs; if
	// selection ignored coverage the two calls would be identical.
	padded := actor.Rates{"IPC": 1.0}
	for _, name := range sets[0] {
		padded[name] = reduced[name] // absent reduced events read zero
	}
	fromRich, err := bank.Predict(ctx, padded)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(fromReduced, fromRich) {
		t.Error("reduced-set rates were served by the rich predictor (outputs identical)")
	}
	if got := bank.Select(1, 2); !reflect.DeepEqual(got, sets[1]) {
		t.Errorf("Select(1, 2) = %v, want the 2-event set %v", got, sets[1])
	}
}

// TestBankRoundTripHeteroMLR exercises the round trip on a heterogeneous
// ParseDesc topology with the MLR model family.
func TestBankRoundTripHeteroMLR(t *testing.T) {
	eng, err := actor.New(
		actor.WithTopology("1x2+1x2:little"),
		actor.WithFast(),
		actor.WithRepetitions(1),
		actor.WithMLR(),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bank, err := eng.Train(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := bank.Meta().Topology; got != "1x2+1x2:little" {
		t.Fatalf("bank topology descriptor = %q, want the training descriptor", got)
	}
	if got := bank.Meta().Kind; got != actor.KindMLR {
		t.Fatalf("bank kind = %q, want %q", got, actor.KindMLR)
	}
	data, err := bank.Encode()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := actor.DecodeBank(data)
	if err != nil {
		t.Fatal(err)
	}
	rates := testRates(bank, 0.9)
	want, err := bank.Predict(ctx, rates)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Predict(ctx, rates)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("hetero predictions changed across the round trip:\nsaved:  %+v\nloaded: %+v", want, got)
	}
	// The loaded bank rebuilds a serving engine on its own topology.
	served, err := actor.ForBank(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if served.TopologyDesc() != "1x2+1x2:little" {
		t.Errorf("ForBank engine topology = %q", served.TopologyDesc())
	}
}

// TestTrainDeterministic checks that two engines built from the same seed
// produce byte-identical banks — the property that makes saved banks
// reproducible artifacts.
func TestTrainDeterministic(t *testing.T) {
	encode := func() []byte {
		eng, err := actor.New(actor.WithFast(), actor.WithRepetitions(1), actor.WithMLR(), actor.WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		bank, err := eng.Train(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		data, err := bank.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(encode(), encode()) {
		t.Error("two trainings under the same seed produced different banks")
	}
}

// TestDecodeBankRejects checks that malformed, foreign and future-versioned
// payloads are rejected with descriptive errors.
func TestDecodeBankRejects(t *testing.T) {
	cases := []struct {
		name, data, want string
	}{
		{"not JSON", `weights go here`, "not a bank file"},
		{"wrong magic", `{"format":"parquet","version":1}`, "not an ACTOR bank"},
		{"missing version", `{"format":"actor-bank"}`, "no valid format version"},
		{"future version", `{"format":"actor-bank","version":99}`, "newer than the supported version"},
		{"bad topology", `{"format":"actor-bank","version":1,"topology":{"desc":"not-a-desc"}}`, "topology"},
		{"no configs", `{"format":"actor-bank","version":1}`, "no configurations"},
		{"sample outside space", `{"format":"actor-bank","version":1,"configs":["1","4"],"sample_config":"9"}`, "not in its configuration space"},
		{"no predictors", `{"format":"actor-bank","version":1,"configs":["1","4"],"sample_config":"4"}`, "no predictors"},
		{"unknown event", `{"format":"actor-bank","version":1,"configs":["1","4"],"sample_config":"4",
			"predictors":[{"events":["NO_SUCH_EVENT"],"mlr":{"1":[0.1,0.2]}}]}`, "unknown event"},
		{"empty predictor", `{"format":"actor-bank","version":1,"configs":["1","4"],"sample_config":"4",
			"predictors":[{"events":["L2_LINES_IN"]}]}`, "holds no models"},
		{"bad net shape", `{"format":"actor-bank","version":1,"configs":["1","4"],"sample_config":"4",
			"predictors":[{"events":["L2_LINES_IN"],"ann":{"1":{"scaler":{"mean":[0,0],"std":[1,1],"ymin":0,"ymax":1},
			"nets":[{"sizes":[2,3,1],"weights":[[0.1],[0.2]]}]}}}]}`, "weights"},
		{"scaler/net dim mismatch", `{"format":"actor-bank","version":1,"configs":["1","4"],"sample_config":"4",
			"predictors":[{"events":["L2_LINES_IN"],"ann":{"1":{"scaler":{"mean":[0,0,0],"std":[1,1,1],"ymin":0,"ymax":1},
			"nets":[{"sizes":[2,1],"weights":[[0.1,0.2,0.3]]}]}}}]}`, "does not match the scaler"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := actor.DecodeBank([]byte(tc.data))
			if err == nil {
				t.Fatalf("decode accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestAttachBankMismatch checks that a bank cannot be attached to an engine
// modelling a different machine.
func TestAttachBankMismatch(t *testing.T) {
	hetero, err := actor.New(actor.WithTopology("1x2+1x2:little"), actor.WithFast(), actor.WithRepetitions(1), actor.WithMLR())
	if err != nil {
		t.Fatal(err)
	}
	bank, err := hetero.Train(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	paper, err := actor.New(actor.WithFast())
	if err != nil {
		t.Fatal(err)
	}
	if err := paper.AttachBank(bank); err == nil {
		t.Fatal("attached a hetero bank to the paper-platform engine")
	} else if !strings.Contains(err.Error(), "topology") {
		t.Errorf("mismatch error %q does not mention the topology", err)
	}
}
