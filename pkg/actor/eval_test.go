package actor_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/greenhpc/actor/pkg/actor"
)

func evalBody(t *testing.T, eng *actor.Engine, units []actor.SweepRequest) string {
	t.Helper()
	req := actor.EvalRequest{
		Topology:    eng.TopologyDesc(),
		Seed:        eng.Seed(),
		BankVersion: actor.BankVersion,
		Units:       units,
	}
	req.Shard.Fingerprint = req.Fingerprint()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestServerEval: a shard evaluated over /v1/eval returns exactly the rows
// the engine computes in-process, and a re-delivered shard returns
// byte-identical bytes (idempotency).
func TestServerEval(t *testing.T) {
	srv := newTestServer(t)
	eng, _ := servingFixture(t)
	units := eng.Workload()
	if len(units) < 2 {
		t.Fatalf("workload has only %d units", len(units))
	}
	shard := units[:2]
	body := evalBody(t, eng, shard)

	first := do(t, srv, http.MethodPost, "/v1/eval", body)
	if first.Code != http.StatusOK {
		t.Fatalf("eval = %d: %s", first.Code, first.Body)
	}
	var resp actor.EvalResponse
	if err := json.Unmarshal(first.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var want []actor.PhaseSweep
	for _, u := range shard {
		sweeps, err := eng.Sweep(context.Background(), u)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, sweeps...)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(resp.Sweeps)
	if string(gotJSON) != string(wantJSON) {
		t.Error("served shard differs from in-process evaluation")
	}

	// Idempotent re-delivery: the duplicate answers the same bytes.
	second := do(t, srv, http.MethodPost, "/v1/eval", body)
	if second.Code != http.StatusOK || second.Body.String() != first.Body.String() {
		t.Errorf("re-delivery diverged: %d vs %d", second.Code, first.Code)
	}
}

func TestServerEvalRejections(t *testing.T) {
	srv := newTestServer(t)
	eng, bank := servingFixture(t)
	units := eng.Workload()[:1]
	good := actor.EvalRequest{
		Topology: eng.TopologyDesc(), Seed: eng.Seed(),
		BankVersion: actor.BankVersion, Units: units,
	}
	mk := func(mut func(r *actor.EvalRequest)) string {
		r := good
		r.Units = append([]actor.SweepRequest(nil), good.Units...)
		mut(&r)
		body, _ := json.Marshal(r)
		return string(body)
	}
	cases := []struct {
		name, body, want string
		code             int
	}{
		{"malformed JSON", `{`, "bad payload", http.StatusBadRequest},
		{"no units", mk(func(r *actor.EvalRequest) {
			r.Units = nil
			r.Shard.Fingerprint = r.Fingerprint()
		}), "units", http.StatusBadRequest},
		{"wrong topology", mk(func(r *actor.EvalRequest) {
			r.Topology = "16x2"
			r.Shard.Fingerprint = r.Fingerprint()
		}), "topology", http.StatusConflict},
		{"wrong seed", mk(func(r *actor.EvalRequest) {
			r.Seed = bank.Meta().Seed + 1
			r.Shard.Fingerprint = r.Fingerprint()
		}), "seed", http.StatusConflict},
		{"wrong bank version", mk(func(r *actor.EvalRequest) {
			r.BankVersion = actor.BankVersion + 7
			r.Shard.Fingerprint = r.Fingerprint()
		}), "version", http.StatusConflict},
		{"fingerprint mismatch", mk(func(r *actor.EvalRequest) {
			r.Shard.Fingerprint = "deadbeef"
		}), "corrupt or truncated", http.StatusConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, srv, http.MethodPost, "/v1/eval", tc.body)
			if rec.Code != tc.code {
				t.Fatalf("code = %d, want %d (%s)", rec.Code, tc.code, rec.Body)
			}
			if !strings.Contains(rec.Body.String(), tc.want) {
				t.Errorf("error %s does not mention %q", rec.Body, tc.want)
			}
		})
	}
	if rec := do(t, srv, http.MethodGet, "/v1/eval", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/eval = %d, want 405", rec.Code)
	}
}

// TestServerReadyz: readiness is distinct from liveness — a draining
// server stays alive but reports 503 so routers stop sending work.
func TestServerReadyz(t *testing.T) {
	eng, _ := servingFixture(t)
	srv, err := actor.NewServer(eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if rec := do(t, srv, http.MethodGet, "/readyz", ""); rec.Code != http.StatusOK {
		t.Fatalf("fresh server readyz = %d: %s", rec.Code, rec.Body)
	}
	srv.BeginDrain()
	rec := do(t, srv, http.MethodGet, "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("draining readyz = %d: %s", rec.Code, rec.Body)
	}
	// Liveness is unaffected, and the data path still answers while
	// in-flight work drains.
	if rec := do(t, srv, http.MethodGet, "/healthz", ""); rec.Code != http.StatusOK {
		t.Errorf("draining healthz = %d", rec.Code)
	}
	if rec := do(t, srv, http.MethodPost, "/v1/sweep", `{"bench":"SP"}`); rec.Code != http.StatusOK {
		t.Errorf("draining sweep = %d: %s", rec.Code, rec.Body)
	}
}

// TestServerCloseDuringSweeps hammers Close concurrently with in-flight
// sweeps: every request must resolve to 200 or 503 — never a hang, never
// a panic (send on closed channel) — and Close must wait for the
// dispatcher to exit. Run under -race in CI.
func TestServerCloseDuringSweeps(t *testing.T) {
	eng, _ := servingFixture(t)
	for round := 0; round < 4; round++ {
		srv, err := actor.NewServer(eng)
		if err != nil {
			t.Fatal(err)
		}
		const goroutines = 8
		var wg sync.WaitGroup
		codes := make(chan int, goroutines*4)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 4; i++ {
					rec := do(t, srv, http.MethodPost, "/v1/sweep", `{"bench":"SP"}`)
					codes <- rec.Code
				}
			}()
		}
		// Close mid-flight from two goroutines at once (Close must be
		// concurrency-safe and idempotent).
		wg.Add(2)
		for k := 0; k < 2; k++ {
			go func() {
				defer wg.Done()
				srv.Close()
			}()
		}
		wg.Wait()
		close(codes)
		for code := range codes {
			if code != http.StatusOK && code != http.StatusServiceUnavailable {
				t.Fatalf("round %d: sweep during Close answered %d", round, code)
			}
		}
	}
}

// TestServerCanceledRequestsReleaseSlots: client-abandoned requests must
// not leak goroutines or wedge the dispatcher. The goroutine census is the
// goleak-style assertion; the follow-up sweep proves the dispatcher still
// owns a free slot.
func TestServerCanceledRequestsReleaseSlots(t *testing.T) {
	srv := newTestServer(t)
	_, bank := servingFixture(t)
	// Warm up the serving path so lazily started runtime goroutines exist
	// before the census.
	if rec := do(t, srv, http.MethodPost, "/v1/sweep", `{"bench":"SP"}`); rec.Code != http.StatusOK {
		t.Fatalf("warmup sweep = %d", rec.Code)
	}
	baseline := runtime.NumGoroutine()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	predictBody, _ := json.Marshal(actor.PredictRequest{Rates: testRates(bank, 1.0)})
	for i := 0; i < 64; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(`{"bench":"SP"}`)).WithContext(canceled)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK && rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("canceled sweep %d answered %d: %s", i, rec.Code, rec.Body)
		}
		req = httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(string(predictBody))).WithContext(canceled)
		rec = httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code == 0 {
			t.Fatalf("canceled predict %d did not answer", i)
		}
	}

	// The dispatcher must still have capacity: a live request succeeds.
	if rec := do(t, srv, http.MethodPost, "/v1/sweep", `{"bench":"SP"}`); rec.Code != http.StatusOK {
		t.Fatalf("sweep after canceled storm = %d: %s", rec.Code, rec.Body)
	}
	// Goroutine census: allow transient scheduler noise to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerBodyLimits: an oversized body is rejected with 413 instead of
// being buffered (or streamed) without bound.
func TestServerBodyLimits(t *testing.T) {
	srv := newTestServer(t)
	big := `{"rates":{"IPC":` + strings.Repeat("1", 2<<20) + `}}`
	for _, path := range []string{"/v1/predict", "/v1/sweep", "/v1/eval"} {
		rec := do(t, srv, http.MethodPost, path, big)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s with 2 MiB body = %d, want 413 (%.80s)", path, rec.Code, rec.Body)
		}
	}
}
