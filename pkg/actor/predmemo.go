package actor

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// predictMemo is the serving-side prediction cache: an exact-key memo from
// (bank version, phase, rate vector) to the fully encoded /v1/predict
// response body. Keys canonicalize the rate vector as sorted
// (event id, float64 bits) pairs, so two requests hit the same line iff
// they parse to the same rates — a hit serves bytes that are provably what
// the miss path would have produced, which is why memo on/off byte-identity
// holds by construction.
//
// The layout is internal/cache's SetAssoc — power-of-two sets × small ways,
// true-LRU within a set via a global clock — adapted for concurrency the
// way internal/machine's phase memo is: lock-free probes through per-way
// atomic pointers, a per-set mutex only on install, and entries that are
// immutable once published.
type predictMemo struct {
	sets    int
	setMask uint64
	ways    int
	lines   []atomic.Pointer[memoEntry] // sets*ways
	locks   []sync.Mutex                // one per set, install-side only
	clock   atomic.Uint64
}

type memoEntry struct {
	key  []byte // canonical key, owned by the entry
	resp []byte // encoded response body, immutable
	// obsErr is the recalibration observer's prediction-error proxy for
	// this request, computed once on the miss that installed the entry so
	// hits can feed the observation store without re-running a predictor.
	obsErr  float64
	lastUse atomic.Uint64
}

const (
	memoSets = 512
	memoWays = 4 // 2048 entries; a line is one distinct (phase, rates) vector
	// memoMaxResp skips caching pathologically large responses (a bank with
	// thousands of configurations) so the memo's footprint stays bounded by
	// sets*ways*memoMaxResp in the worst case.
	memoMaxResp = 64 << 10
)

func newPredictMemo() *predictMemo {
	return &predictMemo{
		sets:    memoSets,
		setMask: memoSets - 1,
		ways:    memoWays,
		lines:   make([]atomic.Pointer[memoEntry], memoSets*memoWays),
		locks:   make([]sync.Mutex, memoSets),
	}
}

// memoHash is FNV-1a over the canonical key.
func memoHash(key []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// lookup returns the cached entry for key, or nil. Lock-free: probes the
// set's ways through atomic pointers and stamps the hit's LRU clock.
func (m *predictMemo) lookup(key []byte) *memoEntry {
	base := int(memoHash(key)&m.setMask) * m.ways
	for w := 0; w < m.ways; w++ {
		e := m.lines[base+w].Load()
		if e != nil && bytes.Equal(e.key, key) {
			e.lastUse.Store(m.clock.Add(1))
			return e
		}
	}
	return nil
}

// get returns the cached response body for key, or nil.
func (m *predictMemo) get(key []byte) []byte {
	if e := m.lookup(key); e != nil {
		return e.resp
	}
	return nil
}

// put installs resp under key, evicting the set's LRU way when full. Both
// slices are copied: callers hand in pooled scratch. obsErr rides along so
// memo hits can observe without recomputing it.
func (m *predictMemo) put(key, resp []byte, obsErr float64) {
	if len(resp) > memoMaxResp {
		return
	}
	set := int(memoHash(key) & m.setMask)
	base := set * m.ways
	e := &memoEntry{
		key:    append([]byte(nil), key...),
		resp:   append([]byte(nil), resp...),
		obsErr: obsErr,
	}
	e.lastUse.Store(m.clock.Add(1))

	m.locks[set].Lock()
	defer m.locks[set].Unlock()
	victim := -1
	for w := 0; w < m.ways; w++ {
		old := m.lines[base+w].Load()
		if old == nil {
			victim = w
			break
		}
		if bytes.Equal(old.key, key) {
			return // a racing miss already installed this key
		}
	}
	if victim < 0 {
		oldest := m.lines[base].Load().lastUse.Load()
		victim = 0
		for w := 1; w < m.ways; w++ {
			if t := m.lines[base+w].Load().lastUse.Load(); t < oldest {
				oldest = t
				victim = w
			}
		}
	}
	m.lines[base+victim].Store(e)
}

// entries counts installed lines (test hook; O(sets*ways)).
func (m *predictMemo) entries() int {
	n := 0
	for i := range m.lines {
		if m.lines[i].Load() != nil {
			n++
		}
	}
	return n
}
