package actor

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sync"

	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/wire"
)

// This file composes internal/wire's Emitter and Scanner into the server's
// per-type codecs. Encoding is byte-identical to the json.Encoder
// configuration writeJSON always used (SetIndent("", " "), HTML escaping,
// trailing newline) — enforced by codec property and fuzz tests against
// encoding/json. Decoding is two-tier: the scanner handles well-formed
// requests without reflection, and anything it declines is re-decoded by
// encoding/json over the same bytes (fallbackDecode), so rejected payloads
// produce exactly the error text and status codes they always have.

// headerJSONValue is the shared Content-Type value slice. Handlers assign
// it into the header map directly: http.Header.Set allocates a fresh
// []string per call, which is most of what's left on a memo-hit request.
var headerJSONValue = []string{"application/json"}

// writeBody writes a fully encoded JSON response body.
func writeBody(w http.ResponseWriter, code int, body []byte) {
	w.Header()["Content-Type"] = headerJSONValue
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// writeWire encodes one response with build and writes it. On an encode
// error (NaN in a float field) it writes the headers and no body, exactly
// as json.Encoder.Encode did in writeJSON.
func writeWire(w http.ResponseWriter, code int, build func(e *wire.Emitter)) {
	e := wire.GetEmitter()
	build(e)
	body, err := e.Finish()
	if err != nil {
		w.Header()["Content-Type"] = headerJSONValue
		w.WriteHeader(code)
	} else {
		writeBody(w, code, body)
	}
	wire.PutEmitter(e)
}

// encodeJSON renders build's document to a fresh byte slice (used for the
// precomputed /v1/bank, health and readyz bodies).
func encodeJSON(build func(e *wire.Emitter)) ([]byte, error) {
	e := wire.GetEmitter()
	defer wire.PutEmitter(e)
	build(e)
	body, err := e.Finish()
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), body...), nil
}

func encodeError(e *wire.Emitter, msg string) {
	e.BeginObject()
	e.Key("error")
	e.Str(msg)
	e.EndObject()
}

func encodeStatus(e *wire.Emitter, status string) {
	e.BeginObject()
	e.Key("status")
	e.Str(status)
	e.EndObject()
}

func encodePrediction(e *wire.Emitter, p *Prediction) {
	e.BeginObject()
	e.Key("config")
	e.Str(p.Config)
	e.Key("ipc")
	e.Float(p.IPC)
	if p.Observed {
		e.Key("observed")
		e.Bool(true)
	}
	e.EndObject()
}

func encodePredictResponse(e *wire.Emitter, phase []byte, preds []Prediction) {
	e.BeginObject()
	if len(phase) > 0 {
		e.Key("phase")
		e.StrBytes(phase)
	}
	e.Key("best")
	e.Str(preds[0].Config)
	e.Key("predictions")
	e.BeginArray()
	for i := range preds {
		encodePrediction(e, &preds[i])
	}
	e.EndArray()
	e.EndObject()
}

func encodePhaseSweeps(e *wire.Emitter, sweeps []PhaseSweep) {
	if sweeps == nil {
		e.Null()
		return
	}
	e.BeginArray()
	for i := range sweeps {
		ps := &sweeps[i]
		e.BeginObject()
		e.Key("bench")
		e.Str(ps.Bench)
		e.Key("phase")
		e.Str(ps.Phase)
		e.Key("rows")
		if ps.Rows == nil {
			e.Null()
		} else {
			e.BeginArray()
			for j := range ps.Rows {
				r := &ps.Rows[j]
				e.BeginObject()
				e.Key("config")
				e.Str(r.Config)
				e.Key("time_sec")
				e.Float(r.TimeSec)
				e.Key("ipc")
				e.Float(r.AggIPC)
				e.EndObject()
			}
			e.EndArray()
		}
		e.EndObject()
	}
	e.EndArray()
}

func encodeSweepResponse(e *wire.Emitter, sweeps []PhaseSweep) {
	e.BeginObject()
	e.Key("sweeps")
	encodePhaseSweeps(e, sweeps)
	e.EndObject()
}

func encodeEvalResponse(e *wire.Emitter, fingerprint string, sweeps []PhaseSweep) {
	e.BeginObject()
	e.Key("fingerprint")
	e.Str(fingerprint)
	e.Key("sweeps")
	encodePhaseSweeps(e, sweeps)
	e.EndObject()
}

func encodeStrings(e *wire.Emitter, ss []string) {
	if ss == nil {
		e.Null()
		return
	}
	e.BeginArray()
	for _, s := range ss {
		e.Str(s)
	}
	e.EndArray()
}

func encodeBankInfo(e *wire.Emitter, info *BankInfo) {
	e.BeginObject()
	e.Key("meta")
	m := &info.Meta
	e.BeginObject()
	e.Key("version")
	e.Int(int64(m.Version))
	e.Key("kind")
	e.Str(string(m.Kind))
	if m.Topology != "" {
		e.Key("topology")
		e.Str(m.Topology)
	}
	if m.TopologyName != "" {
		e.Key("topology_name")
		e.Str(m.TopologyName)
	}
	if m.Cores != 0 {
		e.Key("cores")
		e.Int(int64(m.Cores))
	}
	e.Key("seed")
	e.Int(m.Seed)
	if m.Folds != 0 {
		e.Key("folds")
		e.Int(int64(m.Folds))
	}
	e.Key("configs")
	encodeStrings(e, m.Configs)
	e.Key("sample_config")
	e.Str(m.SampleConfig)
	if len(m.EventSets) != 0 {
		e.Key("event_sets")
		e.BeginArray()
		for _, set := range m.EventSets {
			encodeStrings(e, set)
		}
		e.EndArray()
	}
	if m.Generation != 0 {
		e.Key("generation")
		e.Int(int64(m.Generation))
	}
	if m.Provenance != nil {
		p := m.Provenance
		e.Key("provenance")
		e.BeginObject()
		e.Key("parent")
		e.Int(int64(p.Parent))
		if p.Trigger != "" {
			e.Key("trigger")
			e.Str(p.Trigger)
		}
		e.Key("train_samples")
		e.Int(int64(p.TrainSamples))
		e.Key("holdout_samples")
		e.Int(int64(p.HoldoutSamples))
		e.Key("candidate_err")
		e.Float(p.CandidateErr)
		e.Key("live_err")
		e.Float(p.LiveErr)
		e.Key("margin")
		e.Float(p.Margin)
		e.EndObject()
	}
	e.EndObject()
	e.Key("benches")
	encodeStrings(e, info.Benches)
	if info.Topology != "" {
		e.Key("topology_desc")
		e.Str(info.Topology)
	}
	e.EndObject()
}

// --- request bodies ---

// bodyPool holds POST body read buffers.
var bodyPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// readBody slurps r.Body into buf (reusing its capacity), stopping one
// byte past maxRequestBody: that is enough to distinguish "the first JSON
// value completes within the cap" (accepted, trailing bytes ignored) from
// "needs more" (413), which is exactly http.MaxBytesReader's behaviour as
// observed through a json.Decoder.
func readBody(body io.Reader, buf []byte) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
		if len(buf) > maxRequestBody {
			return buf, nil
		}
	}
}

// fallbackDecode re-decodes body exactly the way the handlers always did —
// json.Decoder over a MaxBytesReader with DisallowUnknownFields — so every
// payload the fast scanner declines gets the historical error text and
// status (400 or 413 via badPayloadStatus).
func fallbackDecode(w http.ResponseWriter, body []byte, v any) error {
	rd := http.MaxBytesReader(w, io.NopCloser(bytes.NewReader(body)), maxRequestBody)
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// decodeSweepFields scans one SweepRequest object body (after its opening
// brace has been consumed) into req. Shared by /v1/sweep and the unit
// elements of /v1/eval.
func decodeSweepFields(sc *wire.Scanner, req *SweepRequest) error {
	seenPhases := false
	for {
		key, ok, err := sc.ObjKey()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		switch {
		case wire.FoldEq(key, "bench"):
			if sc.TryNull() {
				continue // null into a string field is a no-op
			}
			b, err := sc.Str()
			if err != nil {
				return err
			}
			req.Bench = string(b)
		case wire.FoldEq(key, "phases"):
			if seenPhases {
				// A re-keyed array merges element-wise into the previous
				// decode under encoding/json (existing elements are reused,
				// not zeroed); the fallback owns that corner.
				return wire.ErrReject
			}
			seenPhases = true
			isNull, err := sc.BeginArrayOrNull()
			if err != nil {
				return err
			}
			if isNull {
				req.Phases = nil // null into a slice field stores nil
				continue
			}
			phases := req.Phases[:0]
			for {
				more, err := sc.ArrayNext()
				if err != nil {
					return err
				}
				if !more {
					break
				}
				if sc.TryNull() {
					phases = append(phases, "") // null element appends the zero value
					continue
				}
				p, err := sc.Str()
				if err != nil {
					return err
				}
				phases = append(phases, string(p))
			}
			req.Phases = phases
		default:
			return wire.ErrReject // unknown field; fallback phrases the 400
		}
	}
}

// decodeSweepRequest scans a whole /v1/sweep body.
func decodeSweepRequest(sc *wire.Scanner, req *SweepRequest) error {
	isNull, err := sc.BeginObjectOrNull()
	if err != nil || isNull {
		return err
	}
	return decodeSweepFields(sc, req)
}

// decodeEvalRequest scans a whole /v1/eval body.
func decodeEvalRequest(sc *wire.Scanner, req *EvalRequest) error {
	isNull, err := sc.BeginObjectOrNull()
	if err != nil || isNull {
		return err
	}
	seenUnits := false
	for {
		key, ok, err := sc.ObjKey()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		switch {
		case wire.FoldEq(key, "topology"):
			if sc.TryNull() {
				continue
			}
			b, err := sc.Str()
			if err != nil {
				return err
			}
			req.Topology = string(b)
		case wire.FoldEq(key, "seed"):
			if sc.TryNull() {
				continue
			}
			v, err := sc.Int()
			if err != nil {
				return err
			}
			req.Seed = v
		case wire.FoldEq(key, "bank_version"):
			if sc.TryNull() {
				continue
			}
			v, err := sc.Int()
			if err != nil {
				return err
			}
			if int64(int(v)) != v {
				return wire.ErrReject
			}
			req.BankVersion = int(v)
		case wire.FoldEq(key, "shard"):
			isNull, err := sc.BeginObjectOrNull()
			if err != nil || isNull {
				if err != nil {
					return err
				}
				continue
			}
			if err := decodeShardFields(sc, &req.Shard); err != nil {
				return err
			}
		case wire.FoldEq(key, "units"):
			if seenUnits {
				return wire.ErrReject // see decodeSweepFields on re-keyed arrays
			}
			seenUnits = true
			isNull, err := sc.BeginArrayOrNull()
			if err != nil {
				return err
			}
			if isNull {
				req.Units = nil
				continue
			}
			units := req.Units[:0]
			for {
				more, err := sc.ArrayNext()
				if err != nil {
					return err
				}
				if !more {
					break
				}
				var u SweepRequest
				if sc.TryNull() {
					units = append(units, u)
					continue
				}
				isNull, err := sc.BeginObjectOrNull()
				if err != nil {
					return err
				}
				if !isNull {
					if err := decodeSweepFields(sc, &u); err != nil {
						return err
					}
				}
				units = append(units, u)
			}
			req.Units = units
		default:
			return wire.ErrReject
		}
	}
}

func decodeShardFields(sc *wire.Scanner, shard *ShardSpec) error {
	for {
		key, ok, err := sc.ObjKey()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		switch {
		case wire.FoldEq(key, "index"), wire.FoldEq(key, "total"):
			if sc.TryNull() {
				continue
			}
			v, err := sc.Int()
			if err != nil {
				return err
			}
			if int64(int(v)) != v {
				return wire.ErrReject
			}
			if wire.FoldEq(key, "index") {
				shard.Index = int(v)
			} else {
				shard.Total = int(v)
			}
		case wire.FoldEq(key, "fingerprint"):
			if sc.TryNull() {
				continue
			}
			b, err := sc.Str()
			if err != nil {
				return err
			}
			shard.Fingerprint = string(b)
		default:
			return wire.ErrReject
		}
	}
}

// --- predict fast path scratch ---

// eventIDByName resolves a rate mnemonic to its internal event without
// allocating: the map is built once, and m[string(b)] lookups don't copy.
// "IPC" shares pmu.Instructions with the raw mnemonic, which is why the
// fast path refuses requests naming the same event twice (see buildMemoKey).
var eventIDByName = func() map[string]pmu.Event {
	m := make(map[string]pmu.Event, pmu.NumEvents+1)
	for e := pmu.Event(0); int(e) < pmu.NumEvents; e++ {
		m[e.String()] = e
	}
	m["IPC"] = pmu.Instructions
	return m
}()

// predictScratch is the pooled per-request state of the /v1/predict fast
// path: the body buffer, the parsed rate vector as parallel arrays, the
// memo key under construction, and a reusable pmu.Rates map for the miss
// path. Name slices alias the body buffer or the scanner arena, so the
// scratch is only valid while both are held.
type predictScratch struct {
	body  []byte
	key   []byte
	names [][]byte
	ids   []pmu.Event
	vals  []float64
	pr    pmu.Rates
}

var predictScratchPool = sync.Pool{New: func() any {
	return &predictScratch{
		body: make([]byte, 0, 4096),
		key:  make([]byte, 0, 256),
		pr:   make(pmu.Rates, pmu.NumEvents),
	}
}}

func getPredictScratch() *predictScratch {
	sc := predictScratchPool.Get().(*predictScratch)
	sc.names = sc.names[:0]
	sc.ids = sc.ids[:0]
	sc.vals = sc.vals[:0]
	return sc
}

func putPredictScratch(sc *predictScratch) {
	if cap(sc.body) > 1<<20 {
		return
	}
	predictScratchPool.Put(sc)
}

// clearPairs resets the parsed rate vector (a "rates": null re-key).
func (sc *predictScratch) clearPairs() {
	sc.names = sc.names[:0]
	sc.ids = sc.ids[:0]
	sc.vals = sc.vals[:0]
}

// setPair records name=v with encoding/json map semantics: a repeated key
// overwrites its previous value. The vectors are a dozen entries, so the
// linear probe beats any map.
func (sc *predictScratch) setPair(name []byte, id pmu.Event, v float64) {
	for i, n := range sc.names {
		if bytes.Equal(n, name) {
			sc.vals[i] = v
			return
		}
	}
	sc.names = append(sc.names, name)
	sc.ids = append(sc.ids, id)
	sc.vals = append(sc.vals, v)
}

// pmuRates rebuilds the reusable pmu.Rates map from the parsed pairs.
func (sc *predictScratch) pmuRates() pmu.Rates {
	clear(sc.pr)
	for i, id := range sc.ids {
		sc.pr[id] = sc.vals[i]
	}
	return sc.pr
}

// buildMemoKey canonicalizes the request into the memo key: bank version,
// pair count, (event id, float64 bits) pairs sorted by id, then the phase
// bytes. The fixed-width prefix makes the layout unambiguous. Returns nil
// when two mnemonics resolved to the same event ("IPC" plus the raw
// instructions mnemonic): their merge order is map-iteration-dependent on
// the stdlib path today, so those requests stay off the fast path
// entirely rather than having the memo freeze one arbitrary outcome.
func (sc *predictScratch) buildMemoKey(bankVersion int, phase []byte) []byte {
	// Insertion-sort ids and vals together; names are done being useful.
	ids, vals := sc.ids, sc.vals
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			return nil
		}
	}
	k := sc.key[:0]
	k = append(k,
		byte(bankVersion), byte(bankVersion>>8), byte(bankVersion>>16), byte(bankVersion>>24),
		byte(len(ids)), byte(len(ids)>>8))
	for i, id := range ids {
		k = append(k, byte(id))
		bits := math.Float64bits(vals[i])
		k = append(k,
			byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
			byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
	}
	k = append(k, phase...)
	sc.key = k
	return k
}
