// Package actor is the public facade of the ACTOR reproduction: one stable
// import path over the internal evaluation, training, sweep and topology
// engines.
//
// The two central types are Engine and Bank. An Engine owns a simulated
// platform (the paper's quad-core Xeon by default, or any machine described
// by a compact topology descriptor) and exposes the pipeline stages as
// context-aware methods:
//
//	eng, err := actor.New(actor.WithTopology("16x4+32x2:little"), actor.WithFast())
//	bank, err := eng.Train(ctx)                  // offline: counter collection + model training
//	best, err := bank.BestConfig(ctx, rates)     // online: ranked configuration prediction
//	sweeps, err := eng.Sweep(ctx, actor.SweepRequest{Bench: "SP"})
//
// A Bank is a trained predictor bank plus the metadata needed to use it
// anywhere: the topology descriptor it was trained for, the configuration
// space, and the feature event sets. Banks round-trip through a versioned,
// self-describing serialization format (Bank.Save / LoadBank) whose
// predictions are bit-identical across the trip, so a bank trained in one
// process can be served by cmd/actord in another.
//
// Server is that serving layer, and Recalibrator keeps it honest under
// drift: Server.EnableRecalibration streams sampled predict-path
// observations into a drift detector, retrains shadow candidates
// warm-started from the live bank, validates them on a held-out split and
// promotes survivors through an atomic generation-tagged bank swap with
// instant rollback (see docs/SERVING.md, "Continuous recalibration").
//
// Every cmd/ entry point (actor-train, actor-predict, actorsim, actor-live,
// calibrate, actord) is a thin wrapper over this package.
package actor

import (
	"fmt"
	"sort"

	"github.com/greenhpc/actor/internal/pmu"
)

// Rates are observed per-cycle hardware event rates keyed by PAPI-style
// mnemonic (see the /v1/bank endpoint or Bank.Meta for the event names a
// bank consumes). The special key "IPC" carries the instructions-per-cycle
// rate sampled at the maximal-concurrency configuration.
type Rates map[string]float64

// toPMU resolves mnemonic keys into the internal event space.
func (r Rates) toPMU() (pmu.Rates, error) {
	out := make(pmu.Rates, len(r))
	for name, v := range r {
		if name == "IPC" {
			out[pmu.Instructions] = v
			continue
		}
		e, ok := pmu.EventByName(name)
		if !ok {
			return nil, fmt.Errorf("actor: unknown event %q (IPC plus the PAPI mnemonics of the bank's event sets are accepted)", name)
		}
		out[e] = v
	}
	return out, nil
}

// Prediction is one configuration's predicted (or, for the sampling
// configuration, observed) aggregate IPC.
type Prediction struct {
	// Config is the configuration name within the bank's space.
	Config string `json:"config"`
	// IPC is the predicted aggregate instructions per cycle.
	IPC float64 `json:"ipc"`
	// Observed marks the sampling configuration's entry, whose IPC was
	// measured directly rather than predicted.
	Observed bool `json:"observed,omitempty"`
}

// rankPredictions orders predictions by descending IPC, breaking ties by
// configuration name so the ranking is deterministic.
func rankPredictions(ps []Prediction) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].IPC != ps[j].IPC {
			return ps[i].IPC > ps[j].IPC
		}
		return ps[i].Config < ps[j].Config
	})
}
