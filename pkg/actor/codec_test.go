package actor

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"github.com/greenhpc/actor/internal/wire"
)

// stdlibBytes renders v exactly the way the server's historical writeJSON
// did: json.Encoder with SetIndent("", " "), HTML escaping on, trailing
// newline. Every encode test in this file compares the wire codec against
// this reference.
func stdlibBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func wireBytes(t *testing.T, build func(e *wire.Emitter)) []byte {
	t.Helper()
	body, err := encodeJSON(build)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func checkBytes(t *testing.T, got, want []byte) {
	t.Helper()
	if !bytes.Equal(got, want) {
		t.Errorf("wire encoding differs from encoding/json:\nwire:   %q\nstdlib: %q", got, want)
	}
}

// nastyStrings exercises every escape class of the string encoder: HTML
// escapes, control characters, multibyte runes, U+2028/U+2029 and invalid
// UTF-8.
var nastyStrings = []string{
	"",
	"plain",
	`quote " backslash \ slash /`,
	"<script>&amp;</script>",
	"tabs\tnewlines\nreturns\r",
	"nul\x00bel\x07unit\x1f",
	"héllo, 世界",
	"line\u2028para\u2029sep",
	"bad\xffutf8\xc3(",
	"truncated\xe2\x82",
}

func TestEncodePredictResponseMatchesStdlib(t *testing.T) {
	preds := [][]Prediction{
		{{Config: "4x2", IPC: 1.25}},
		{
			{Config: "4x2", IPC: 3.0000000000000004},
			{Config: "2x2", IPC: 2.5, Observed: true},
			{Config: "1x1", IPC: 1e-7},
			{Config: "1x2", IPC: 1e21},
			{Config: "2x1", IPC: -5e-324},
			{Config: "zero", IPC: 0},
			{Config: "negzero", IPC: math.Copysign(0, -1)},
		},
	}
	phases := append([]string{"x_solve"}, nastyStrings...)
	for _, ps := range preds {
		for _, phase := range phases {
			got := wireBytes(t, func(e *wire.Emitter) { encodePredictResponse(e, []byte(phase), ps) })
			want := stdlibBytes(t, PredictResponse{Phase: phase, Best: ps[0].Config, Predictions: ps})
			checkBytes(t, got, want)
		}
	}
}

func TestEncodeSweepResponseMatchesStdlib(t *testing.T) {
	cases := [][]PhaseSweep{
		nil,
		{},
		{{Bench: "SP", Phase: "x_solve", Rows: nil}},
		{{Bench: "SP", Phase: "x_solve", Rows: []SweepRow{}}},
		{
			{Bench: "SP", Phase: nastyStrings[8], Rows: []SweepRow{
				{Config: "4x2", TimeSec: 12.5, AggIPC: 1.1},
				{Config: "2x2", TimeSec: 1e-9, AggIPC: 4e21},
			}},
			{Bench: "CG", Phase: "conj_grad", Rows: []SweepRow{{}}},
		},
	}
	for _, sweeps := range cases {
		got := wireBytes(t, func(e *wire.Emitter) { encodeSweepResponse(e, sweeps) })
		want := stdlibBytes(t, SweepResponse{Sweeps: sweeps})
		checkBytes(t, got, want)

		got = wireBytes(t, func(e *wire.Emitter) { encodeEvalResponse(e, "deadbeef", sweeps) })
		want = stdlibBytes(t, EvalResponse{Fingerprint: "deadbeef", Sweeps: sweeps})
		checkBytes(t, got, want)
	}
}

func TestEncodeBankInfoMatchesStdlib(t *testing.T) {
	full := BankInfo{
		Meta: Meta{
			Version:      3,
			Kind:         "mlr",
			Topology:     "2s2c1t",
			TopologyName: "paper quad Xeon",
			Cores:        4,
			Seed:         -42,
			Folds:        5,
			Configs:      []string{"1x1", "4x2"},
			SampleConfig: "4x2",
			EventSets:    [][]string{{"INST_RETIRED", "L2_MISSES"}, {"INST_RETIRED"}},
			Generation:   2,
			Provenance: &Provenance{
				Parent:         1,
				Trigger:        "drift:novel-phase",
				TrainSamples:   96,
				HoldoutSamples: 32,
				CandidateErr:   0.041,
				LiveErr:        0.057,
				Margin:         0.1,
			},
		},
		Benches:  []string{"SP", "CG"},
		Topology: "2s2c1t",
	}
	minimal := BankInfo{
		Meta: Meta{Kind: "ann", Configs: nil, SampleConfig: ""},
		// nil Benches must encode as null, like the stdlib tag would.
	}
	empties := BankInfo{
		Meta: Meta{
			Configs:   []string{},
			EventSets: [][]string{},
		},
		Benches: []string{},
	}
	// A promoted generation whose provenance omits the optional trigger:
	// the omitempty on trigger and the zero-generation omission both have
	// to match the stdlib tags exactly.
	manualGen := BankInfo{
		Meta: Meta{
			Kind:       "mlr",
			Generation: 1,
			Provenance: &Provenance{Parent: 0, TrainSamples: 3, HoldoutSamples: 1},
		},
	}
	for _, info := range []BankInfo{full, minimal, empties, manualGen} {
		got := wireBytes(t, func(e *wire.Emitter) { encodeBankInfo(e, &info) })
		want := stdlibBytes(t, info)
		checkBytes(t, got, want)
	}
}

func TestEncodeErrorAndStatusMatchStdlib(t *testing.T) {
	for _, msg := range nastyStrings {
		got := wireBytes(t, func(e *wire.Emitter) { encodeError(e, msg) })
		want := stdlibBytes(t, errorResponse{Error: msg})
		checkBytes(t, got, want)

		got = wireBytes(t, func(e *wire.Emitter) { encodeStatus(e, msg) })
		want = stdlibBytes(t, struct {
			Status string `json:"status"`
		}{msg})
		checkBytes(t, got, want)
	}
}

// TestEncodeNaNWithholdsBody pins the all-or-nothing failure mode: a NaN
// anywhere in a response produces no bytes, matching json.Encoder.Encode.
func TestEncodeNaNWithholdsBody(t *testing.T) {
	_, err := encodeJSON(func(e *wire.Emitter) {
		encodeSweepResponse(e, []PhaseSweep{{Bench: "SP", Rows: []SweepRow{{AggIPC: math.NaN()}}}})
	})
	if err == nil {
		t.Fatal("encoding a NaN succeeded; json.Encoder refuses it")
	}
}

// FuzzEncodePredictResponse drives the composed response encoder with
// arbitrary strings and float bit patterns.
func FuzzEncodePredictResponse(f *testing.F) {
	f.Add("x_solve", "4x2", uint64(0x3ff0000000000000), true)
	f.Add("", "a\x00b", uint64(0x7fef_ffff_ffff_ffff), false)
	f.Add("p\xffq", "<&>", uint64(1), false)
	f.Fuzz(func(t *testing.T, phase, config string, bits uint64, observed bool) {
		ipc := math.Float64frombits(bits)
		preds := []Prediction{{Config: config, IPC: ipc, Observed: observed}}
		got, err := encodeJSON(func(e *wire.Emitter) { encodePredictResponse(e, []byte(phase), preds) })
		if math.IsNaN(ipc) || math.IsInf(ipc, 0) {
			if err == nil {
				t.Fatal("NaN/Inf encoded without error")
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		want := stdlibBytes(t, PredictResponse{Phase: phase, Best: config, Predictions: preds})
		checkBytes(t, got, want)
	})
}

// --- decode parity ---

// stdlibDecode decodes data the way the fallback path does (one value,
// unknown fields rejected) without the HTTP plumbing.
func stdlibDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// FuzzDecodeSweepRequestParity is the wire-scanner acceptance contract for
// /v1/sweep bodies: any input the scanner accepts must be one encoding/json
// also accepts, decoded to the identical struct. Inputs the scanner
// declines are out of scope — the handler replays them through
// encoding/json itself.
func FuzzDecodeSweepRequestParity(f *testing.F) {
	f.Add([]byte(`{"bench":"SP"}`))
	f.Add([]byte(`{"BENCH":"sp","phases":["a",null,"b"]}`))
	f.Add([]byte(`{"phases":null,"bench":"x","bench":"y"}`))
	f.Add([]byte(`{"phases":["a"],"phases":["b","c"]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))
	f.Add([]byte(` { "bench" : "\u0053P" } trailing garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := wire.GetScanner(data)
		var got SweepRequest
		err := decodeSweepRequest(sc, &got)
		wire.PutScanner(sc)
		if err != nil {
			return // declined: the fallback path owns this input
		}
		var want SweepRequest
		if serr := stdlibDecode(data, &want); serr != nil {
			t.Fatalf("scanner accepted %q but encoding/json rejects it: %v", data, serr)
		}
		if got.Bench != want.Bench || !reflect.DeepEqual(normSlice(got.Phases), normSlice(want.Phases)) {
			t.Fatalf("decode mismatch for %q:\nscanner: %+v\nstdlib:  %+v", data, got, want)
		}
	})
}

// FuzzDecodeEvalRequestParity is the same contract for /v1/eval bodies.
func FuzzDecodeEvalRequestParity(f *testing.F) {
	f.Add([]byte(`{"topology":"2s2c1t","seed":-7,"bank_version":3,` +
		`"shard":{"index":1,"total":4,"fingerprint":"ab"},` +
		`"units":[{"bench":"SP","phases":["x"]},null,{}]}`))
	f.Add([]byte(`{"SEED":12,"Shard":null,"units":null}`))
	f.Add([]byte(`{"seed":9007199254740993}`))
	f.Add([]byte(`{"units":[{"bench":"a"},{"bench":"b"}],"units":[{"bench":"c"}]}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := wire.GetScanner(data)
		var got EvalRequest
		err := decodeEvalRequest(sc, &got)
		wire.PutScanner(sc)
		if err != nil {
			return
		}
		var want EvalRequest
		if serr := stdlibDecode(data, &want); serr != nil {
			t.Fatalf("scanner accepted %q but encoding/json rejects it: %v", data, serr)
		}
		got.Units = normUnits(got.Units)
		want.Units = normUnits(want.Units)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("decode mismatch for %q:\nscanner: %+v\nstdlib:  %+v", data, got, want)
		}
	})
}

// normSlice maps empty to nil: for `[]` the scanner yields a nil slice
// where the stdlib allocates an empty one. Handlers only ever len() and
// range request slices (they are never re-encoded), so the difference is
// unobservable; the parity check normalizes it away.
func normSlice(s []string) []string {
	if len(s) == 0 {
		return nil
	}
	return s
}

func normUnits(u []SweepRequest) []SweepRequest {
	if len(u) == 0 {
		return nil
	}
	out := make([]SweepRequest, len(u))
	for i := range u {
		out[i] = u[i]
		out[i].Phases = normSlice(u[i].Phases)
	}
	return out
}
