package actor

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
)

// maxRequestBody caps every POST body the server decodes. A stalled or
// unbounded body can otherwise pin a serving goroutine for the connection
// lifetime; 1 MiB is orders of magnitude above any legitimate payload.
const maxRequestBody = 1 << 20

// Server serves a trained bank over HTTP JSON — the online half of the
// paper run as a service. Endpoints:
//
//	GET  /healthz     liveness probe (process is up)
//	GET  /readyz      readiness probe (willing to take traffic; 503 while
//	                  draining or while the sweep dispatcher is saturated)
//	GET  /v1/bank     bank metadata (topology, configs, event sets)
//	POST /v1/predict  observed rates (+ optional phase label) → ranked configs
//	POST /v1/sweep    benchmark (+ optional phases) → per-placement responses
//	POST /v1/eval     one shard of a distributed sweep → deterministic rows
//
// Predictions run directly on the bank (steady-state allocation-free).
// Sweeps funnel through a single dispatcher goroutine that micro-batches
// concurrent requests: all requests queued at dispatch time are drained,
// deduplicated, executed back-to-back over the engine's shared sharded
// phase memo (repeat sweeps are memo hits), and fanned back out. Create
// with NewServer; Close drains the dispatcher and releases it.
type Server struct {
	eng  *Engine
	bank *Bank
	mux  *http.ServeMux

	jobs chan *sweepJob
	stop chan struct{}
	// done is closed when the dispatcher goroutine has exited; Close waits
	// for it so no micro-batch is mid-flight after Close returns.
	done chan struct{}

	// draining flips readiness to 503 ahead of shutdown (BeginDrain) so
	// health-checking clients stop routing new work here while in-flight
	// requests finish.
	draining atomic.Bool

	evals *evalCache

	closeOnce sync.Once
}

type sweepJob struct {
	req SweepRequest
	// ctx is the requester's context: the dispatcher skips a batch group
	// when every requester has already gone away.
	ctx   context.Context
	reply chan sweepReply
}

type sweepReply struct {
	sweeps []PhaseSweep
	err    error
}

// NewServer builds a Server over the engine's attached bank. The engine
// must have a bank (Train, LoadBank via ForBank, or AttachBank).
func NewServer(eng *Engine) (*Server, error) {
	bank := eng.Bank()
	if bank == nil {
		return nil, fmt.Errorf("actor: serving needs a bank attached to the engine")
	}
	s := &Server{
		eng:   eng,
		bank:  bank,
		mux:   http.NewServeMux(),
		jobs:  make(chan *sweepJob, 64),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		evals: newEvalCache(256),
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/v1/bank", s.handleBank)
	s.mux.HandleFunc("/v1/predict", s.handlePredict)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/eval", s.handleEval)
	go s.dispatch()
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// BeginDrain marks the server not-ready (readyz turns 503) without
// stopping it: in-flight and even new requests still complete, but
// health-checking clients — the dist coordinator, a load balancer — stop
// sending new work. Call it ahead of http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close stops the sweep dispatcher and waits for it to finish the batch it
// is executing, then fails every sweep still queued with a
// server-closing error (their handlers answer 503 — never a hang, never a
// send on a closed channel). Safe to call concurrently and repeatedly;
// the Server must not be used afterwards.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		close(s.stop)
		<-s.done
		// The dispatcher is gone; drain jobs that raced into the queue so
		// their waiters get a definitive reply instead of relying solely on
		// the stop select.
		for {
			select {
			case j := <-s.jobs:
				j.reply <- sweepReply{err: errServerClosing}
			default:
				return
			}
		}
	})
}

var errServerClosing = fmt.Errorf("server closing")

// dispatch is the sweep micro-batcher: it blocks for one job, greedily
// drains everything else already queued, deduplicates identical requests,
// executes each distinct sweep once and replies to every waiter.
func (s *Server) dispatch() {
	defer close(s.done)
	for {
		var first *sweepJob
		select {
		case first = <-s.jobs:
		case <-s.stop:
			return
		}
		batch := []*sweepJob{first}
	drain:
		for {
			select {
			case j := <-s.jobs:
				batch = append(batch, j)
			default:
				break drain
			}
		}
		// Group identical requests so one RunPhaseSweep serves them all.
		type group struct {
			req  SweepRequest
			jobs []*sweepJob
		}
		var order []string
		groups := make(map[string]*group, len(batch))
		for _, j := range batch {
			key := j.req.Bench + "\x00" + strings.Join(j.req.Phases, "\x00")
			g, ok := groups[key]
			if !ok {
				g = &group{req: j.req}
				groups[key] = g
				order = append(order, key)
			}
			g.jobs = append(g.jobs, j)
		}
		for _, key := range order {
			g := groups[key]
			// Don't burn the single dispatcher on work nobody will read:
			// skip the group when every requester has disconnected. The
			// sweep itself runs on a background context — a batched result
			// outlives any one requester — so one client bailing mid-sweep
			// cannot cancel the others' answer.
			live := false
			for _, j := range g.jobs {
				if j.ctx.Err() == nil {
					live = true
					break
				}
			}
			rep := sweepReply{err: context.Canceled}
			if live {
				rep.sweeps, rep.err = s.eng.Sweep(context.Background(), g.req)
			}
			for _, j := range g.jobs {
				j.reply <- rep // buffered: never blocks the dispatcher
			}
		}
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyzSaturation is the queue depth (as a fraction of capacity) at which
// the sweep dispatcher is considered saturated and readiness flips to 503:
// the worker is alive but should not be handed more work.
const readyzSaturation = 0.75

// handleReadyz is the readiness probe, distinct from liveness: a 503 here
// means "alive but do not route new work to me". Not-ready while draining
// (BeginDrain/Close) and while the sweep dispatcher queue is saturated.
// The dist coordinator's worker health state machine consumes this.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if float64(len(s.jobs)) >= readyzSaturation*float64(cap(s.jobs)) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "saturated"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// BankInfo is the /v1/bank response: the bank header plus the serving
// platform's identity.
type BankInfo struct {
	Meta     Meta     `json:"meta"`
	Benches  []string `json:"benches"`
	Topology string   `json:"topology_desc,omitempty"`
}

func (s *Server) handleBank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, BankInfo{
		Meta:     s.bank.Meta(),
		Benches:  s.eng.BenchNames(),
		Topology: s.eng.TopologyDesc(),
	})
}

// PredictRequest is the /v1/predict payload: the observed per-cycle event
// rates ("IPC" plus the bank's PAPI mnemonics) and an optional phase label
// echoed back for correlation.
type PredictRequest struct {
	Phase string `json:"phase,omitempty"`
	Rates Rates  `json:"rates"`
}

// PredictResponse is the ranked prediction for one request.
type PredictResponse struct {
	Phase       string       `json:"phase,omitempty"`
	Best        string       `json:"best"`
	Predictions []Prediction `json:"predictions"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badPayloadStatus(err), "bad payload: %v", err)
		return
	}
	if len(req.Rates) == 0 {
		writeError(w, http.StatusBadRequest, `bad payload: "rates" is required and must be non-empty`)
		return
	}
	ranked, err := s.bank.Predict(r.Context(), req.Rates)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		Phase:       req.Phase,
		Best:        ranked[0].Config,
		Predictions: ranked,
	})
}

// SweepResponse is the /v1/sweep reply.
type SweepResponse struct {
	Sweeps []PhaseSweep `json:"sweeps"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badPayloadStatus(err), "bad payload: %v", err)
		return
	}
	if req.Bench == "" {
		writeError(w, http.StatusBadRequest, `bad payload: "bench" is required`)
		return
	}
	job := &sweepJob{req: req, ctx: r.Context(), reply: make(chan sweepReply, 1)}
	select {
	case s.jobs <- job:
	case <-s.stop:
		writeError(w, http.StatusServiceUnavailable, "server closing")
		return
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
		return
	}
	select {
	case rep := <-job.reply:
		if rep.err != nil {
			code := http.StatusBadRequest
			if rep.err == errServerClosing || rep.err == context.Canceled {
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, "%v", rep.err)
			return
		}
		writeJSON(w, http.StatusOK, SweepResponse{Sweeps: rep.sweeps})
	case <-s.stop:
		writeError(w, http.StatusServiceUnavailable, "server closing")
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
	}
}

// badPayloadStatus maps a decode error to its HTTP status: 413 when the
// MaxBytesReader tripped, 400 otherwise.
func badPayloadStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// handleEval evaluates one shard of a distributed sweep (see EvalRequest).
// Idempotent on re-delivery: the shard fingerprint keys a bounded result
// cache, and results are deterministic regardless, so a retried or hedged
// delivery always observes identical rows. Shards for a different platform
// identity (topology/seed/bank version) are rejected with 409 so a
// misconfigured coordinator fails loudly instead of merging rows computed
// on the wrong machine.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req EvalRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badPayloadStatus(err), "bad payload: %v", err)
		return
	}
	if err := s.validateEval(&req); err != nil {
		code := http.StatusConflict
		if strings.HasPrefix(err.Error(), "bad payload") {
			code = http.StatusBadRequest
		}
		writeError(w, code, "%v", err)
		return
	}
	fp := req.Shard.Fingerprint
	if sweeps, ok := s.evals.get(fp); ok {
		writeJSON(w, http.StatusOK, EvalResponse{Fingerprint: fp, Sweeps: sweeps})
		return
	}
	sweeps := make([]PhaseSweep, 0, len(req.Units))
	for _, u := range req.Units {
		got, err := s.eng.Sweep(r.Context(), u)
		if err != nil {
			code := http.StatusBadRequest
			if r.Context().Err() != nil {
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, "%v", err)
			return
		}
		sweeps = append(sweeps, got...)
	}
	s.evals.put(fp, sweeps)
	writeJSON(w, http.StatusOK, EvalResponse{Fingerprint: fp, Sweeps: sweeps})
}
