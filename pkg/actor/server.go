package actor

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/greenhpc/actor/internal/wire"
)

// maxRequestBody caps every POST body the server decodes. A stalled or
// unbounded body can otherwise pin a serving goroutine for the connection
// lifetime; 1 MiB is orders of magnitude above any legitimate payload.
const maxRequestBody = 1 << 20

// Server serves a trained bank over HTTP JSON — the online half of the
// paper run as a service. Endpoints:
//
//	GET  /healthz     liveness probe (process is up)
//	GET  /readyz      readiness probe (willing to take traffic; 503 while
//	                  draining or while the sweep dispatcher is saturated)
//	GET  /v1/bank     bank metadata (topology, configs, event sets)
//	POST /v1/predict  observed rates (+ optional phase label) → ranked configs
//	POST /v1/sweep    benchmark (+ optional phases) → per-placement responses
//	POST /v1/eval     one shard of a distributed sweep → deterministic rows
//
// Predictions run directly on the bank (steady-state allocation-free).
// Sweeps funnel through a single dispatcher goroutine that micro-batches
// concurrent requests: all requests queued at dispatch time are drained,
// deduplicated, executed back-to-back over the engine's shared sharded
// phase memo (repeat sweeps are memo hits), and fanned back out. Create
// with NewServer; Close drains the dispatcher and releases it.
type Server struct {
	eng *Engine
	mux *http.ServeMux

	jobs chan *sweepJob
	stop chan struct{}
	// done is closed when the dispatcher goroutine has exited; Close waits
	// for it so no micro-batch is mid-flight after Close returns.
	done chan struct{}

	// draining flips readiness to 503 ahead of shutdown (BeginDrain) so
	// health-checking clients stop routing new work here while in-flight
	// requests finish.
	draining atomic.Bool

	evals *evalCache

	// memo caches fully encoded /v1/predict responses by exact canonical
	// request (nil when ACTOR_PREDICT_MEMO=off). The bank state's memo
	// generation joins the key, so entries cached against a previous bank
	// can never be served after a swap.
	memo *predictMemo

	// state is the served bank plus everything derived from it, swapped as
	// one unit (SwapBank) so a request observes a single consistent bank.
	state atomic.Pointer[bankState]
	// swapMu serialises SwapBank; nextGen is the memo-key generation
	// counter, monotonically increasing across swaps (including rollbacks,
	// which install a fresh generation of old content).
	swapMu  sync.Mutex
	nextGen int

	// recal, when non-nil, is the online recalibration subsystem
	// (EnableRecalibration): predict traffic feeds its observation store
	// and the /v1/recal/* admin routes come alive.
	recal atomic.Pointer[Recalibrator]

	closeOnce sync.Once
}

// bankState is one immutable served-bank snapshot: the bank, the memo key
// generation that isolates its cache entries, and the pre-encoded /v1/bank
// response. Handlers load it once per request and never see a torn swap.
type bankState struct {
	bank *Bank
	gen  int    // memo-key generation, unique per installed state
	body []byte // encoded /v1/bank response
	blen []string
}

type sweepJob struct {
	req SweepRequest
	// ctx is the requester's context: the dispatcher skips a batch group
	// when every requester has already gone away.
	ctx   context.Context
	reply chan sweepReply
}

type sweepReply struct {
	sweeps []PhaseSweep
	err    error
}

// NewServer builds a Server over the engine's attached bank. The engine
// must have a bank (Train, LoadBank via ForBank, or AttachBank).
func NewServer(eng *Engine) (*Server, error) {
	bank := eng.Bank()
	if bank == nil {
		return nil, fmt.Errorf("actor: serving needs a bank attached to the engine")
	}
	s := &Server{
		eng:   eng,
		mux:   http.NewServeMux(),
		jobs:  make(chan *sweepJob, 64),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		evals: newEvalCache(256),
	}
	if os.Getenv("ACTOR_PREDICT_MEMO") != "off" {
		s.memo = newPredictMemo()
	}
	// The initial memo generation is the bank's format version, preserving
	// the historical key layout; swaps move strictly upward from there.
	s.nextGen = bank.Meta().Version
	st, err := s.encodeBankState(bank, s.nextGen)
	if err != nil {
		return nil, err
	}
	s.state.Store(st)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/v1/bank", s.handleBank)
	s.mux.HandleFunc("/v1/predict", s.handlePredict)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/eval", s.handleEval)
	s.mux.HandleFunc("/v1/recal/status", s.handleRecalStatus)
	s.mux.HandleFunc("/v1/recal/trigger", s.handleRecalTrigger)
	s.mux.HandleFunc("/v1/recal/promote", s.handleRecalPromote)
	s.mux.HandleFunc("/v1/recal/rollback", s.handleRecalRollback)
	go s.dispatch()
	return s, nil
}

// encodeBankState renders one bank into a complete, immutable bankState.
func (s *Server) encodeBankState(bank *Bank, gen int) (*bankState, error) {
	info := BankInfo{
		Meta:     bank.Meta(),
		Benches:  s.eng.BenchNames(),
		Topology: s.eng.TopologyDesc(),
	}
	body, err := encodeJSON(func(e *wire.Emitter) { encodeBankInfo(e, &info) })
	if err != nil {
		return nil, fmt.Errorf("actor: encoding bank info: %w", err)
	}
	return &bankState{
		bank: bank,
		gen:  gen,
		body: body,
		blen: []string{strconv.Itoa(len(body))},
	}, nil
}

// Bank returns the currently served bank.
func (s *Server) Bank() *Bank { return s.state.Load().bank }

// SwapBank atomically replaces the served bank with b: /v1/bank, /v1/predict
// and /v1/eval all flip to the new bank in one pointer store, with zero
// downtime and no torn state. The swap validates b against the engine's
// platform (AttachBank) and advances the memo generation, so prediction
// cache entries from the previous bank can never satisfy a request again.
// In-flight requests that already loaded the old state finish against it —
// old bytes for the old bank, never a mix.
func (s *Server) SwapBank(b *Bank) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	st, err := s.encodeBankState(b, s.nextGen+1)
	if err != nil {
		return err
	}
	if err := s.eng.AttachBank(b); err != nil {
		return err
	}
	s.nextGen++
	s.state.Store(st)
	return nil
}

// ServeHTTP implements http.Handler. The predict endpoint is routed with
// one string compare instead of the mux's path cleaning and pattern match:
// it is the only route whose request cost is counted in nanoseconds.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/predict" {
		s.handlePredict(w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// BeginDrain marks the server not-ready (readyz turns 503) without
// stopping it: in-flight and even new requests still complete, but
// health-checking clients — the dist coordinator, a load balancer — stop
// sending new work. Call it ahead of http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close stops the sweep dispatcher and waits for it to finish the batch it
// is executing, then fails every sweep still queued with a
// server-closing error (their handlers answer 503 — never a hang, never a
// send on a closed channel). Safe to call concurrently and repeatedly;
// the Server must not be used afterwards.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		close(s.stop)
		<-s.done
		// The dispatcher is gone; drain jobs that raced into the queue so
		// their waiters get a definitive reply instead of relying solely on
		// the stop select.
		for {
			select {
			case j := <-s.jobs:
				j.reply <- sweepReply{err: errServerClosing}
			default:
				return
			}
		}
	})
}

var errServerClosing = fmt.Errorf("server closing")

// dispatch is the sweep micro-batcher: it blocks for one job, greedily
// drains everything else already queued, deduplicates identical requests,
// executes each distinct sweep once and replies to every waiter.
func (s *Server) dispatch() {
	defer close(s.done)
	for {
		var first *sweepJob
		select {
		case first = <-s.jobs:
		case <-s.stop:
			return
		}
		batch := []*sweepJob{first}
	drain:
		for {
			select {
			case j := <-s.jobs:
				batch = append(batch, j)
			default:
				break drain
			}
		}
		// Group identical requests so one RunPhaseSweep serves them all.
		type group struct {
			req  SweepRequest
			jobs []*sweepJob
		}
		var order []string
		groups := make(map[string]*group, len(batch))
		for _, j := range batch {
			key := j.req.Bench + "\x00" + strings.Join(j.req.Phases, "\x00")
			g, ok := groups[key]
			if !ok {
				g = &group{req: j.req}
				groups[key] = g
				order = append(order, key)
			}
			g.jobs = append(g.jobs, j)
		}
		for _, key := range order {
			g := groups[key]
			// Don't burn the single dispatcher on work nobody will read:
			// skip the group when every requester has disconnected. The
			// sweep itself runs on a background context — a batched result
			// outlives any one requester — so one client bailing mid-sweep
			// cannot cancel the others' answer.
			live := false
			for _, j := range g.jobs {
				if j.ctx.Err() == nil {
					live = true
					break
				}
			}
			rep := sweepReply{err: context.Canceled}
			if live {
				rep.sweeps, rep.err = s.eng.Sweep(context.Background(), g.req)
			}
			for _, j := range g.jobs {
				j.reply <- rep // buffered: never blocks the dispatcher
			}
		}
	}
}

// errorResponse documents the error body shape; encodeError emits it.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	writeWire(w, code, func(e *wire.Emitter) { encodeError(e, msg) })
}

// Responses that never vary are encoded once at init and served as cached
// bytes: the health and readiness bodies, the method-mismatch errors, and
// the fixed predict validation error.
var (
	statusOKBody        = mustEncodeStatus("ok")
	statusReadyBody     = mustEncodeStatus("ready")
	statusDrainingBody  = mustEncodeStatus("draining")
	statusSaturatedBody = mustEncodeStatus("saturated")
	errUseGETBody       = mustEncodeError("use GET")
	errUsePOSTBody      = mustEncodeError("use POST")

	errRatesRequiredBody = mustEncodeError(`bad payload: "rates" is required and must be non-empty`)
)

func mustEncodeStatus(status string) []byte {
	b, err := encodeJSON(func(e *wire.Emitter) { encodeStatus(e, status) })
	if err != nil {
		panic(err)
	}
	return b
}

func mustEncodeError(msg string) []byte {
	b, err := encodeJSON(func(e *wire.Emitter) { encodeError(e, msg) })
	if err != nil {
		panic(err)
	}
	return b
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeBody(w, http.StatusMethodNotAllowed, errUseGETBody)
		return
	}
	writeBody(w, http.StatusOK, statusOKBody)
}

// readyzSaturation is the queue depth (as a fraction of capacity) at which
// the sweep dispatcher is considered saturated and readiness flips to 503:
// the worker is alive but should not be handed more work.
const readyzSaturation = 0.75

// handleReadyz is the readiness probe, distinct from liveness: a 503 here
// means "alive but do not route new work to me". Not-ready while draining
// (BeginDrain/Close) and while the sweep dispatcher queue is saturated.
// The dist coordinator's worker health state machine consumes this.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeBody(w, http.StatusMethodNotAllowed, errUseGETBody)
		return
	}
	if s.draining.Load() {
		writeBody(w, http.StatusServiceUnavailable, statusDrainingBody)
		return
	}
	if float64(len(s.jobs)) >= readyzSaturation*float64(cap(s.jobs)) {
		writeBody(w, http.StatusServiceUnavailable, statusSaturatedBody)
		return
	}
	writeBody(w, http.StatusOK, statusReadyBody)
}

// BankInfo is the /v1/bank response: the bank header plus the serving
// platform's identity.
type BankInfo struct {
	Meta     Meta     `json:"meta"`
	Benches  []string `json:"benches"`
	Topology string   `json:"topology_desc,omitempty"`
}

// handleBank serves the response encoded once at NewServer, with an
// explicit Content-Length so even a bank too large for the response
// buffer goes out framed instead of chunked.
func (s *Server) handleBank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeBody(w, http.StatusMethodNotAllowed, errUseGETBody)
		return
	}
	st := s.state.Load()
	h := w.Header()
	h["Content-Type"] = headerJSONValue
	h["Content-Length"] = st.blen
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(st.body)
}

// PredictRequest is the /v1/predict payload: the observed per-cycle event
// rates ("IPC" plus the bank's PAPI mnemonics) and an optional phase label
// echoed back for correlation.
type PredictRequest struct {
	Phase string `json:"phase,omitempty"`
	Rates Rates  `json:"rates"`
}

// PredictResponse is the ranked prediction for one request.
type PredictResponse struct {
	Phase       string       `json:"phase,omitempty"`
	Best        string       `json:"best"`
	Predictions []Prediction `json:"predictions"`
}

// handlePredict is the serving hot path: pooled body read, wire-codec
// parse, memo probe, and a single response Write — allocation-free end to
// end on a memo hit. Anything the fast path declines (malformed JSON,
// unknown fields or mnemonics, oversize bodies, duplicate event ids)
// replays through slowPredict, the historical stdlib handler, so observable
// behaviour — every byte, every status — is unchanged.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeBody(w, http.StatusMethodNotAllowed, errUsePOSTBody)
		return
	}
	sc := getPredictScratch()
	body, err := readBody(r.Body, sc.body)
	sc.body = body
	if err != nil {
		putPredictScratch(sc)
		writeError(w, badPayloadStatus(err), "bad payload: %v", err)
		return
	}
	// One state load serves the whole request: the memo key, the predictor
	// and the fallback path all see the same bank even mid-swap.
	st := s.state.Load()
	scan := wire.GetScanner(body)
	done := s.tryFastPredict(w, r, scan, sc, st)
	wire.PutScanner(scan)
	if !done {
		s.slowPredict(w, r, body, st)
	}
	putPredictScratch(sc)
}

// tryFastPredict parses, predicts and responds through the wire codec.
// It reports false — having written nothing — when the request belongs on
// the stdlib path instead.
func (s *Server) tryFastPredict(w http.ResponseWriter, r *http.Request, scan *wire.Scanner, sc *predictScratch, st *bankState) bool {
	var phase []byte
	isNull, err := scan.BeginObjectOrNull()
	if err != nil {
		return false
	}
	if !isNull {
		for {
			key, ok, err := scan.ObjKey()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			switch {
			case wire.FoldEq(key, "phase"):
				if scan.TryNull() {
					continue // null into a string field is a no-op
				}
				b, err := scan.Str()
				if err != nil {
					return false
				}
				phase = b
			case wire.FoldEq(key, "rates"):
				mNull, err := scan.BeginObjectOrNull()
				if err != nil {
					return false
				}
				if mNull {
					sc.clearPairs() // null stores a nil map
					continue
				}
				// A repeated "rates" key merges into the existing map, like
				// encoding/json decoding an object into a non-nil map — so
				// pairs accumulate across keys and setPair overwrites.
				for {
					name, mok, err := scan.ObjKey()
					if err != nil {
						return false
					}
					if !mok {
						break
					}
					id, known := eventIDByName[string(name)]
					if !known {
						return false // unknown mnemonic: fallback owns the error
					}
					var v float64
					if !scan.TryNull() {
						if v, err = scan.Float(); err != nil {
							return false
						}
					}
					sc.setPair(name, id, v)
				}
			default:
				return false // unknown field: fallback phrases the 400
			}
		}
	}
	if scan.Pos() > maxRequestBody {
		return false // first value needs more than the cap: fallback serves the 413
	}
	if len(sc.ids) == 0 {
		writeBody(w, http.StatusBadRequest, errRatesRequiredBody)
		return true
	}
	if err := r.Context().Err(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return true
	}
	key := sc.buildMemoKey(st.gen, phase)
	if key == nil {
		// Two mnemonics resolved to one event: merge order is
		// map-iteration-dependent on the stdlib path, and the memo must not
		// freeze one arbitrary outcome.
		return false
	}
	rec := s.recal.Load()
	if s.memo != nil {
		if entry := s.memo.lookup(key); entry != nil {
			if rec != nil {
				rec.observe(sc, phase, entry.obsErr)
			}
			writeBody(w, http.StatusOK, entry.resp)
			return true
		}
	}
	pr := sc.pmuRates()
	ranked, err := st.bank.predictPMU(pr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return true
	}
	var obsErr float64
	if rec != nil {
		// Miss path only: hits reuse the value cached in the memo entry.
		obsErr = st.bank.disagreement(pr)
	}
	e := wire.GetEmitter()
	encodePredictResponse(e, phase, ranked)
	respBody, err := e.Finish()
	if err != nil {
		// NaN in a prediction: headers then no body, as json.Encoder did.
		w.Header()["Content-Type"] = headerJSONValue
		w.WriteHeader(http.StatusOK)
	} else {
		if s.memo != nil {
			s.memo.put(key, respBody, obsErr)
		}
		if rec != nil {
			rec.observe(sc, phase, obsErr)
		}
		writeBody(w, http.StatusOK, respBody)
	}
	wire.PutEmitter(e)
	return true
}

// slowPredict is the historical handler over the already-read body:
// stdlib decode for exact error text, bank.Predict, wire-encoded success.
func (s *Server) slowPredict(w http.ResponseWriter, r *http.Request, body []byte, st *bankState) {
	var req PredictRequest
	if err := fallbackDecode(w, body, &req); err != nil {
		writeError(w, badPayloadStatus(err), "bad payload: %v", err)
		return
	}
	if len(req.Rates) == 0 {
		writeBody(w, http.StatusBadRequest, errRatesRequiredBody)
		return
	}
	ranked, err := st.bank.Predict(r.Context(), req.Rates)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeWire(w, http.StatusOK, func(e *wire.Emitter) {
		encodePredictResponse(e, []byte(req.Phase), ranked)
	})
}

// SweepResponse is the /v1/sweep reply.
type SweepResponse struct {
	Sweeps []PhaseSweep `json:"sweeps"`
}

// decodePOSTBody reads and decodes one POST body through the wire scanner
// with stdlib fallback. decode runs the scanner into v; when it declines
// (or the value overruns the cap), v is reset to zero and re-decoded by
// encoding/json for the historical behaviour. Returns false with the
// error response already written.
func decodePOSTBody(w http.ResponseWriter, r *http.Request, v any, decode func(*wire.Scanner) error, reset func()) bool {
	bufp := bodyPool.Get().(*[]byte)
	body, err := readBody(r.Body, *bufp)
	*bufp = body
	defer func() {
		if cap(*bufp) <= 1<<20 {
			bodyPool.Put(bufp)
		}
	}()
	if err != nil {
		writeError(w, badPayloadStatus(err), "bad payload: %v", err)
		return false
	}
	scan := wire.GetScanner(body)
	derr := decode(scan)
	pos := scan.Pos()
	wire.PutScanner(scan)
	if derr != nil || pos > maxRequestBody {
		reset()
		if err := fallbackDecode(w, body, v); err != nil {
			writeError(w, badPayloadStatus(err), "bad payload: %v", err)
			return false
		}
	}
	return true
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeBody(w, http.StatusMethodNotAllowed, errUsePOSTBody)
		return
	}
	var req SweepRequest
	ok := decodePOSTBody(w, r, &req,
		func(scan *wire.Scanner) error { return decodeSweepRequest(scan, &req) },
		func() { req = SweepRequest{} })
	if !ok {
		return
	}
	if req.Bench == "" {
		writeError(w, http.StatusBadRequest, `bad payload: "bench" is required`)
		return
	}
	job := &sweepJob{req: req, ctx: r.Context(), reply: make(chan sweepReply, 1)}
	select {
	case s.jobs <- job:
	case <-s.stop:
		writeError(w, http.StatusServiceUnavailable, "server closing")
		return
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
		return
	}
	select {
	case rep := <-job.reply:
		if rep.err != nil {
			code := http.StatusBadRequest
			if rep.err == errServerClosing || rep.err == context.Canceled {
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, "%v", rep.err)
			return
		}
		writeWire(w, http.StatusOK, func(e *wire.Emitter) { encodeSweepResponse(e, rep.sweeps) })
	case <-s.stop:
		writeError(w, http.StatusServiceUnavailable, "server closing")
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
	}
}

// badPayloadStatus maps a decode error to its HTTP status: 413 when the
// MaxBytesReader tripped, 400 otherwise.
func badPayloadStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// handleEval evaluates one shard of a distributed sweep (see EvalRequest).
// Idempotent on re-delivery: the shard fingerprint keys a bounded result
// cache, and results are deterministic regardless, so a retried or hedged
// delivery always observes identical rows. Shards for a different platform
// identity (topology/seed/bank version) are rejected with 409 so a
// misconfigured coordinator fails loudly instead of merging rows computed
// on the wrong machine.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeBody(w, http.StatusMethodNotAllowed, errUsePOSTBody)
		return
	}
	var req EvalRequest
	ok := decodePOSTBody(w, r, &req,
		func(scan *wire.Scanner) error { return decodeEvalRequest(scan, &req) },
		func() { req = EvalRequest{} })
	if !ok {
		return
	}
	if err := s.validateEval(&req); err != nil {
		code := http.StatusConflict
		if strings.HasPrefix(err.Error(), "bad payload") {
			code = http.StatusBadRequest
		}
		writeError(w, code, "%v", err)
		return
	}
	fp := req.Shard.Fingerprint
	if cached, ok := s.evals.get(fp); ok {
		writeBody(w, http.StatusOK, cached)
		return
	}
	sweeps := make([]PhaseSweep, 0, len(req.Units))
	for _, u := range req.Units {
		got, err := s.eng.Sweep(r.Context(), u)
		if err != nil {
			code := http.StatusBadRequest
			if r.Context().Err() != nil {
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, "%v", err)
			return
		}
		sweeps = append(sweeps, got...)
	}
	// Cache the encoded bytes, not the rows: a re-delivered or hedged shard
	// is answered with one Write and zero re-encoding.
	e := wire.GetEmitter()
	encodeEvalResponse(e, fp, sweeps)
	body, err := e.Finish()
	if err != nil {
		w.Header()["Content-Type"] = headerJSONValue
		w.WriteHeader(http.StatusOK)
	} else {
		s.evals.put(fp, append([]byte(nil), body...))
		writeBody(w, http.StatusOK, body)
	}
	wire.PutEmitter(e)
}
