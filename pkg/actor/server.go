package actor

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// Server serves a trained bank over HTTP JSON — the online half of the
// paper run as a service. Endpoints:
//
//	GET  /healthz     liveness probe
//	GET  /v1/bank     bank metadata (topology, configs, event sets)
//	POST /v1/predict  observed rates (+ optional phase label) → ranked configs
//	POST /v1/sweep    benchmark (+ optional phases) → per-placement responses
//
// Predictions run directly on the bank (steady-state allocation-free).
// Sweeps funnel through a single dispatcher goroutine that micro-batches
// concurrent requests: all requests queued at dispatch time are drained,
// deduplicated, executed back-to-back over the engine's shared sharded
// phase memo (repeat sweeps are memo hits), and fanned back out. Create
// with NewServer; Close releases the dispatcher.
type Server struct {
	eng  *Engine
	bank *Bank
	mux  *http.ServeMux

	jobs chan *sweepJob
	stop chan struct{}

	closeOnce sync.Once
}

type sweepJob struct {
	req SweepRequest
	// ctx is the requester's context: the dispatcher skips a batch group
	// when every requester has already gone away.
	ctx   context.Context
	reply chan sweepReply
}

type sweepReply struct {
	sweeps []PhaseSweep
	err    error
}

// NewServer builds a Server over the engine's attached bank. The engine
// must have a bank (Train, LoadBank via ForBank, or AttachBank).
func NewServer(eng *Engine) (*Server, error) {
	bank := eng.Bank()
	if bank == nil {
		return nil, fmt.Errorf("actor: serving needs a bank attached to the engine")
	}
	s := &Server{
		eng:  eng,
		bank: bank,
		mux:  http.NewServeMux(),
		jobs: make(chan *sweepJob, 64),
		stop: make(chan struct{}),
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/bank", s.handleBank)
	s.mux.HandleFunc("/v1/predict", s.handlePredict)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	go s.dispatch()
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the sweep dispatcher. In-flight requests receive errors;
// the Server must not be used afterwards.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
}

// dispatch is the sweep micro-batcher: it blocks for one job, greedily
// drains everything else already queued, deduplicates identical requests,
// executes each distinct sweep once and replies to every waiter.
func (s *Server) dispatch() {
	for {
		var first *sweepJob
		select {
		case first = <-s.jobs:
		case <-s.stop:
			return
		}
		batch := []*sweepJob{first}
	drain:
		for {
			select {
			case j := <-s.jobs:
				batch = append(batch, j)
			default:
				break drain
			}
		}
		// Group identical requests so one RunPhaseSweep serves them all.
		type group struct {
			req  SweepRequest
			jobs []*sweepJob
		}
		var order []string
		groups := make(map[string]*group, len(batch))
		for _, j := range batch {
			key := j.req.Bench + "\x00" + strings.Join(j.req.Phases, "\x00")
			g, ok := groups[key]
			if !ok {
				g = &group{req: j.req}
				groups[key] = g
				order = append(order, key)
			}
			g.jobs = append(g.jobs, j)
		}
		for _, key := range order {
			g := groups[key]
			// Don't burn the single dispatcher on work nobody will read:
			// skip the group when every requester has disconnected. The
			// sweep itself runs on a background context — a batched result
			// outlives any one requester — so one client bailing mid-sweep
			// cannot cancel the others' answer.
			live := false
			for _, j := range g.jobs {
				if j.ctx.Err() == nil {
					live = true
					break
				}
			}
			rep := sweepReply{err: context.Canceled}
			if live {
				rep.sweeps, rep.err = s.eng.Sweep(context.Background(), g.req)
			}
			for _, j := range g.jobs {
				j.reply <- rep // buffered: never blocks the dispatcher
			}
		}
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// BankInfo is the /v1/bank response: the bank header plus the serving
// platform's identity.
type BankInfo struct {
	Meta     Meta     `json:"meta"`
	Benches  []string `json:"benches"`
	Topology string   `json:"topology_desc,omitempty"`
}

func (s *Server) handleBank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, BankInfo{
		Meta:     s.bank.Meta(),
		Benches:  s.eng.BenchNames(),
		Topology: s.eng.TopologyDesc(),
	})
}

// PredictRequest is the /v1/predict payload: the observed per-cycle event
// rates ("IPC" plus the bank's PAPI mnemonics) and an optional phase label
// echoed back for correlation.
type PredictRequest struct {
	Phase string `json:"phase,omitempty"`
	Rates Rates  `json:"rates"`
}

// PredictResponse is the ranked prediction for one request.
type PredictResponse struct {
	Phase       string       `json:"phase,omitempty"`
	Best        string       `json:"best"`
	Predictions []Prediction `json:"predictions"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req PredictRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad payload: %v", err)
		return
	}
	if len(req.Rates) == 0 {
		writeError(w, http.StatusBadRequest, `bad payload: "rates" is required and must be non-empty`)
		return
	}
	ranked, err := s.bank.Predict(r.Context(), req.Rates)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		Phase:       req.Phase,
		Best:        ranked[0].Config,
		Predictions: ranked,
	})
}

// SweepResponse is the /v1/sweep reply.
type SweepResponse struct {
	Sweeps []PhaseSweep `json:"sweeps"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad payload: %v", err)
		return
	}
	if req.Bench == "" {
		writeError(w, http.StatusBadRequest, `bad payload: "bench" is required`)
		return
	}
	job := &sweepJob{req: req, ctx: r.Context(), reply: make(chan sweepReply, 1)}
	select {
	case s.jobs <- job:
	case <-s.stop:
		writeError(w, http.StatusServiceUnavailable, "server closing")
		return
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
		return
	}
	select {
	case rep := <-job.reply:
		if rep.err != nil {
			writeError(w, http.StatusBadRequest, "%v", rep.err)
			return
		}
		writeJSON(w, http.StatusOK, SweepResponse{Sweeps: rep.sweeps})
	case <-s.stop:
		writeError(w, http.StatusServiceUnavailable, "server closing")
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
	}
}
