package actor

import (
	"context"
	"runtime"
	"sort"
	"time"

	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/kernels"
	"github.com/greenhpc/actor/internal/omp"
)

// LiveOptions configures RunLive, the real-computation throttling path.
// Zero values take the defaults noted per field.
type LiveOptions struct {
	// Kernel runs a single named kernel ("" = every kernel).
	Kernel string
	// Scale is the problem-size scale factor (default 2).
	Scale int
	// Steps is the number of timesteps per kernel (default 30).
	Steps int
	// MaxThreads is the highest thread count probed (default: NumCPU).
	MaxThreads int
	// Probes is the number of probe executions per candidate (default 2).
	Probes int
}

// LiveProbe is one candidate thread count's accumulated probe time.
type LiveProbe struct {
	Threads  int
	ProbeSec float64
}

// LiveResult is one kernel's outcome: the concurrency level the tuner
// locked, total elapsed time, and the per-candidate probe times (fastest
// first).
type LiveResult struct {
	Kernel     string
	Choice     int
	Steps      int
	ElapsedSec float64
	Probes     []LiveProbe
}

// RunLive throttles real Go computation: it runs the NPB-style mini-kernels
// on the omp worker team, wrapping every timestep in the live tuner's
// Begin/End instrumentation, and reports the concurrency level each kernel
// settles on. The context is checked between timesteps, so cancellation
// stops mid-kernel with the error.
func RunLive(ctx context.Context, o LiveOptions) ([]LiveResult, error) {
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if o.Steps <= 0 {
		o.Steps = 30
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = runtime.NumCPU()
	}
	if o.Probes <= 0 {
		o.Probes = 2
	}
	var list []kernels.Kernel
	if o.Kernel != "" {
		k, err := kernels.ByName(o.Kernel, o.Scale)
		if err != nil {
			return nil, err
		}
		list = []kernels.Kernel{k}
	} else {
		list = kernels.All(o.Scale)
	}

	out := make([]LiveResult, 0, len(list))
	for _, k := range list {
		team := omp.NewTeam(o.MaxThreads, false)
		tuner, err := core.NewLiveTuner(core.DefaultCandidates(o.MaxThreads), o.Probes)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for it := 0; it < o.Steps; it++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			team.SetThreads(tuner.Begin())
			k.Step(team)
			tuner.End()
		}
		res := LiveResult{
			Kernel:     k.Name(),
			Choice:     tuner.Choice(),
			Steps:      o.Steps,
			ElapsedSec: time.Since(start).Seconds(),
		}
		for th, sec := range tuner.ProbeTimes() {
			res.Probes = append(res.Probes, LiveProbe{Threads: th, ProbeSec: sec})
		}
		sort.Slice(res.Probes, func(i, j int) bool { return res.Probes[i].ProbeSec < res.Probes[j].ProbeSec })
		out = append(out, res)
	}
	return out, nil
}
