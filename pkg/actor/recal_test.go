package actor_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"github.com/greenhpc/actor/internal/recal"
	"github.com/greenhpc/actor/pkg/actor"
)

// newRecalEngine builds a private engine + bank for recalibration tests.
// Recal tests cannot share servingFixture: promotion and rollback swap the
// engine's attached bank, which would poison every other test using it.
func newRecalEngine(t testing.TB, opts ...actor.Option) (*actor.Engine, *actor.Bank) {
	t.Helper()
	eng, err := actor.New(append([]actor.Option{
		actor.WithFast(), actor.WithRepetitions(1), actor.WithMLR(),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	bank, err := eng.Train(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return eng, bank
}

func newRecalServer(t testing.TB, opts ...actor.Option) (*actor.Server, *actor.Bank) {
	t.Helper()
	eng, bank := newRecalEngine(t, opts...)
	srv, err := actor.NewServer(eng)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, bank
}

// predictAs posts one /v1/predict request with the given phase label and
// returns the response body.
func predictAs(t *testing.T, srv *actor.Server, bank *actor.Bank, phase string, ipc float64) string {
	t.Helper()
	body, _ := json.Marshal(actor.PredictRequest{Phase: phase, Rates: testRates(bank, ipc)})
	rec := do(t, srv, http.MethodPost, "/v1/predict", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("predict = %d: %s", rec.Code, rec.Body)
	}
	return rec.Body.String()
}

// TestRecalLifecycle drives the full loop end to end in-process: steady
// traffic arms the drift detector, a phase flip trips it, Tick retrains and
// promotes a new generation with provenance on /v1/bank, and rollback
// restores the previous generation's /v1/bank body byte-identically.
func TestRecalLifecycle(t *testing.T) {
	srv, bank := newRecalServer(t)
	rec, err := srv.EnableRecalibration(actor.RecalConfig{
		Store: recal.StoreConfig{Reservoir: 64, RefWindow: 16, Window: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.EnableRecalibration(actor.RecalConfig{}); err == nil {
		t.Fatal("second EnableRecalibration did not fail")
	}

	bankBefore := do(t, srv, http.MethodGet, "/v1/bank", "").Body.String()
	if strings.Contains(bankBefore, `"generation"`) {
		t.Fatalf("generation 0 must be omitted from /v1/bank: %s", bankBefore)
	}

	// 16 steady observations arm the reference window; a Tick here must not
	// retrain (window empty, nothing tripped).
	for i := 0; i < 16; i++ {
		predictAs(t, srv, bank, "steady", 1.1)
	}
	rec.Tick(context.Background())
	if got := do(t, srv, http.MethodGet, "/v1/bank", "").Body.String(); got != bankBefore {
		t.Fatal("bank changed before any drift")
	}

	// The phase flip: 16 observations under a label the reference window
	// never saw fill the rolling window with 100% novel mass.
	for i := 0; i < 16; i++ {
		predictAs(t, srv, bank, "shifted", 1.1)
	}
	st := statusOf(t, srv)
	if !st.Drift.Tripped || st.Drift.Reason != "novel-phase" {
		t.Fatalf("drift not tripped by phase flip: %+v", st.Drift)
	}

	rec.Tick(context.Background())
	st = statusOf(t, srv)
	if st.Generation != 1 {
		t.Fatalf("generation = %d after drift tick, want 1 (events: %+v)", st.Generation, st.Events)
	}
	if st.History != 1 || st.State != "idle" {
		t.Fatalf("history=%d state=%q after promotion, want 1/idle", st.History, st.State)
	}
	last := st.Events[len(st.Events)-1]
	if last.Kind != "promoted" || last.Trigger != "drift:novel-phase" || last.Generation != 1 {
		t.Fatalf("last event = %+v, want promoted/drift:novel-phase/gen1", last)
	}

	bankAfter := do(t, srv, http.MethodGet, "/v1/bank", "").Body.String()
	if bankAfter == bankBefore {
		t.Fatal("/v1/bank unchanged after promotion")
	}
	var info actor.BankInfo
	if err := json.Unmarshal([]byte(bankAfter), &info); err != nil {
		t.Fatal(err)
	}
	p := info.Meta.Provenance
	if info.Meta.Generation != 1 || p == nil {
		t.Fatalf("promoted bank meta lacks generation/provenance: %+v", info.Meta)
	}
	if p.Parent != 0 || p.Trigger != "drift:novel-phase" || p.TrainSamples == 0 || p.HoldoutSamples == 0 {
		t.Fatalf("provenance = %+v", p)
	}
	if !(p.CandidateErr <= p.LiveErr) {
		t.Fatalf("promoted candidate err %v did not beat live err %v", p.CandidateErr, p.LiveErr)
	}

	// The promoted generation serves predictions from the new bank: the
	// memo must not replay generation-0 bytes for a request it has cached.
	if got := predictAs(t, srv, bank, "steady", 1.1); got == "" {
		t.Fatal("predict failed after promotion")
	}

	// Rollback restores the previous generation byte-identically.
	if rr := do(t, srv, http.MethodPost, "/v1/recal/rollback", ""); rr.Code != http.StatusOK {
		t.Fatalf("rollback = %d: %s", rr.Code, rr.Body)
	}
	if got := do(t, srv, http.MethodGet, "/v1/bank", "").Body.String(); got != bankBefore {
		t.Fatalf("rolled-back /v1/bank is not byte-identical to the original\n got: %s\nwant: %s", got, bankBefore)
	}
	// Nothing left to roll back to.
	if rr := do(t, srv, http.MethodPost, "/v1/recal/rollback", ""); rr.Code != http.StatusConflict {
		t.Fatalf("second rollback = %d, want 409", rr.Code)
	}
}

func statusOf(t *testing.T, srv *actor.Server) recal.Snapshot {
	t.Helper()
	rr := do(t, srv, http.MethodGet, "/v1/recal/status", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rr.Code, rr.Body)
	}
	var snap recal.Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestRecalTriggerDeterministic is the acceptance check on reproducibility:
// the same live bank triggers the same retrain decision and byte-identical
// promoted bank bytes, across independent servers and across GOMAXPROCS.
func TestRecalTriggerDeterministic(t *testing.T) {
	run := func(procs int) (string, string) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		srv, _ := newRecalServer(t)
		if _, err := srv.EnableRecalibration(actor.RecalConfig{}); err != nil {
			t.Fatal(err)
		}
		rr := do(t, srv, http.MethodPost, "/v1/recal/trigger", "")
		if rr.Code != http.StatusOK {
			t.Fatalf("trigger = %d: %s", rr.Code, rr.Body)
		}
		bank := do(t, srv, http.MethodGet, "/v1/bank", "").Body.String()
		return rr.Body.String(), bank
	}
	out1, bank1 := run(1)
	out4, bank4 := run(4)
	if out1 != out4 {
		t.Errorf("trigger outcome differs across GOMAXPROCS:\n 1: %s\n 4: %s", out1, out4)
	}
	if bank1 != bank4 {
		t.Error("promoted /v1/bank bytes differ across GOMAXPROCS")
	}
	var out actor.RecalOutcome
	if err := json.Unmarshal([]byte(out1), &out); err != nil {
		t.Fatal(err)
	}
	if out.Outcome != "promoted" || out.Generation != 1 || out.Trigger != "manual" {
		t.Fatalf("trigger outcome = %+v, want promoted gen 1 manual", out)
	}
}

// TestRecalPromotedBankRoundTrip checks the provenance chain survives
// serialization: a promoted bank's Save/Load round trip is byte-identical,
// and a pre-provenance bank file (the old format) loads with generation 0
// and no provenance.
func TestRecalPromotedBankRoundTrip(t *testing.T) {
	srv, _ := newRecalServer(t)
	rec, err := srv.EnableRecalibration(actor.RecalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rec.Trigger(context.Background())
	if err != nil || out.Outcome != "promoted" {
		t.Fatalf("trigger: %+v, %v", out, err)
	}
	promoted := srv.Bank()
	data, err := promoted.Encode()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := actor.DecodeBank(data)
	if err != nil {
		t.Fatal(err)
	}
	if g := loaded.Meta().Generation; g != 1 {
		t.Fatalf("loaded generation = %d, want 1", g)
	}
	lp, pp := loaded.Meta().Provenance, promoted.Meta().Provenance
	if lp == nil || *lp != *pp {
		t.Fatalf("loaded provenance %+v != saved %+v", lp, pp)
	}
	data2, err := loaded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("promoted bank round trip is not byte-identical")
	}

	// Old-format file: strip the provenance fields the way a bank written
	// before this subsystem existed would lack them.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	delete(raw, "generation")
	delete(raw, "provenance")
	old, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := actor.DecodeBank(old)
	if err != nil {
		t.Fatalf("old-format bank did not load: %v", err)
	}
	if legacy.Meta().Generation != 0 || legacy.Meta().Provenance != nil {
		t.Fatalf("old-format bank carries provenance: %+v", legacy.Meta())
	}
}

// TestRecalCanary exercises the canary path: a validated candidate is held,
// shadow-scored on admitted live traffic, auto-promoted once enough requests
// scored cleanly, and a rollback mid-canary aborts without ever swapping.
func TestRecalCanary(t *testing.T) {
	srv, bank := newRecalServer(t)
	rec, err := srv.EnableRecalibration(actor.RecalConfig{CanaryFrac: 1, CanaryMin: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rec.Trigger(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Outcome != "canary" {
		t.Fatalf("outcome = %q, want canary", out.Outcome)
	}
	if st := statusOf(t, srv); st.State != "canary" || st.Generation != 0 {
		t.Fatalf("status during canary = %+v", st)
	}
	// A second trigger while the canary is in flight must 409.
	if rr := do(t, srv, http.MethodPost, "/v1/recal/trigger", ""); rr.Code != http.StatusConflict {
		t.Fatalf("trigger during canary = %d, want 409", rr.Code)
	}
	// Rollback during the canary aborts it; the live bank never changed.
	if rr := do(t, srv, http.MethodPost, "/v1/recal/rollback", ""); rr.Code != http.StatusOK {
		t.Fatalf("rollback during canary = %d: %s", rr.Code, rr.Body)
	}
	st := statusOf(t, srv)
	if st.State != "idle" || st.Generation != 0 {
		t.Fatalf("canary abort left %+v", st)
	}
	if last := st.Events[len(st.Events)-1]; last.Kind != "canary-abort" {
		t.Fatalf("last event = %+v, want canary-abort", last)
	}

	// Round two: let the canary complete. The platform is stationary, so a
	// given attempt's fresh campaign may legitimately fail to beat the live
	// bank at margin 0 — each rejection re-arms to idle, and the attempt
	// counter reseeds the next campaign, so retry until a canary begins.
	began := false
	for i := 0; i < 8 && !began; i++ {
		out, err := rec.Trigger(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		began = out.Outcome == "canary"
	}
	if !began {
		t.Fatal("no canary began in 8 attempts")
	}
	// CanaryFrac 1 admits every observation, so CanaryMin requests plus a
	// Tick auto-promote.
	for i := 0; i < 4; i++ {
		predictAs(t, srv, bank, fmt.Sprintf("p%d", i), 1.1)
	}
	st = statusOf(t, srv)
	if st.Canary.Scored < 4 || st.Canary.Failed != 0 {
		t.Fatalf("canary tallies = %+v, want >=4 scored, 0 failed", st.Canary)
	}
	rec.Tick(context.Background())
	if st = statusOf(t, srv); st.State != "idle" || st.Generation != 1 {
		t.Fatalf("canary did not auto-promote: %+v", st)
	}

	// Promote with no canary in flight must 409.
	if rr := do(t, srv, http.MethodPost, "/v1/recal/promote", ""); rr.Code != http.StatusConflict {
		t.Fatalf("promote while idle = %d, want 409", rr.Code)
	}
}

// TestRecalManualPromote force-completes a canary through the admin route.
func TestRecalManualPromote(t *testing.T) {
	srv, _ := newRecalServer(t)
	rec, err := srv.EnableRecalibration(actor.RecalConfig{CanaryFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := rec.Trigger(context.Background()); err != nil || out.Outcome != "canary" {
		t.Fatalf("trigger: %+v, %v", out, err)
	}
	if rr := do(t, srv, http.MethodPost, "/v1/recal/promote", ""); rr.Code != http.StatusOK {
		t.Fatalf("promote = %d: %s", rr.Code, rr.Body)
	}
	if st := statusOf(t, srv); st.Generation != 1 || st.State != "idle" {
		t.Fatalf("manual promote left %+v", st)
	}
}

// TestRecalDisabledRoutes: without EnableRecalibration the admin routes
// answer 503, and predict traffic is untouched.
func TestRecalDisabledRoutes(t *testing.T) {
	srv := newTestServer(t)
	for _, c := range []struct{ method, path string }{
		{http.MethodGet, "/v1/recal/status"},
		{http.MethodPost, "/v1/recal/trigger"},
		{http.MethodPost, "/v1/recal/promote"},
		{http.MethodPost, "/v1/recal/rollback"},
	} {
		if rr := do(t, srv, c.method, c.path, ""); rr.Code != http.StatusServiceUnavailable {
			t.Errorf("%s %s = %d, want 503", c.method, c.path, rr.Code)
		}
	}
	if rr := do(t, srv, http.MethodPost, "/v1/recal/status", ""); rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", rr.Code)
	}
	if rr := do(t, srv, http.MethodGet, "/v1/recal/trigger", ""); rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET trigger = %d, want 405", rr.Code)
	}
}

// TestRecalMemoInvalidationOnSwap: a request cached under one bank
// generation must be re-predicted — not replayed from the memo — after
// SwapBank installs a different bank.
func TestRecalMemoInvalidationOnSwap(t *testing.T) {
	eng, bankA := newRecalEngine(t)
	srv, err := actor.NewServer(eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Same platform, different characterisation campaign: a distinct bank
	// that still attaches to the same engine.
	_, bankB := newRecalEngine(t, actor.WithRepetitions(2))

	first := predictAs(t, srv, bankA, "x", 1.1)
	if again := predictAs(t, srv, bankA, "x", 1.1); again != first {
		t.Fatal("memo-hit replay differs from first response")
	}
	if err := srv.SwapBank(bankB); err != nil {
		t.Fatal(err)
	}
	swapped := predictAs(t, srv, bankA, "x", 1.1)
	if swapped == first {
		t.Fatal("stale memo entry served after bank swap")
	}
	if again := predictAs(t, srv, bankA, "x", 1.1); again != swapped {
		t.Fatal("post-swap memo replay differs")
	}
	// Swapping back must serve the original bytes again.
	if err := srv.SwapBank(bankA); err != nil {
		t.Fatal(err)
	}
	if back := predictAs(t, srv, bankA, "x", 1.1); back != first {
		t.Fatal("restoring the original bank did not restore its bytes")
	}
}

// TestRecalSwapRace hammers /v1/predict concurrently with bank swaps and
// asserts every response is byte-exact for one of the two banks — never a
// torn or stale-generation body. Run with -race this also proves the swap
// path is data-race free.
func TestRecalSwapRace(t *testing.T) {
	eng, bankA := newRecalEngine(t)
	srv, err := actor.NewServer(eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, bankB := newRecalEngine(t, actor.WithRepetitions(2))

	body, _ := json.Marshal(actor.PredictRequest{Phase: "x", Rates: testRates(bankA, 1.1)})
	wantA := predictAs(t, srv, bankA, "x", 1.1)
	if err := srv.SwapBank(bankB); err != nil {
		t.Fatal(err)
	}
	wantB := predictAs(t, srv, bankA, "x", 1.1)
	if wantA == wantB {
		t.Fatal("the two banks predict identically; race test needs distinguishable bodies")
	}

	const workers, reqs, swaps = 4, 200, 50
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reqs; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(string(body)))
				rr := httptest.NewRecorder()
				srv.ServeHTTP(rr, req)
				if rr.Code != http.StatusOK {
					errs <- fmt.Sprintf("predict = %d: %s", rr.Code, rr.Body)
					return
				}
				if got := rr.Body.String(); got != wantA && got != wantB {
					errs <- fmt.Sprintf("response matches neither bank:\n%s", got)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < swaps; i++ {
			b := bankA
			if i%2 == 0 {
				b = bankB
			}
			if err := srv.SwapBank(b); err != nil {
				errs <- fmt.Sprintf("swap %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// Settle on bank A: with no swap in flight the served bytes must be
	// exactly bank A's, proving the final memo generation is coherent.
	if err := srv.SwapBank(bankA); err != nil {
		t.Fatal(err)
	}
	if got := predictAs(t, srv, bankA, "x", 1.1); got != wantA {
		t.Fatal("settled server does not serve bank A's bytes")
	}
}
