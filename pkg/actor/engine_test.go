package actor_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"github.com/greenhpc/actor/pkg/actor"
)

func TestEngineSweep(t *testing.T) {
	eng, _ := servingFixture(t)
	ctx := context.Background()
	sweeps, err := eng.Sweep(ctx, actor.SweepRequest{Bench: "SP"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) == 0 {
		t.Fatal("sweep returned no phases")
	}
	cfgs := eng.ConfigNames()
	for _, ps := range sweeps {
		if len(ps.Rows) != len(cfgs) {
			t.Fatalf("phase %s has %d rows, want %d", ps.Phase, len(ps.Rows), len(cfgs))
		}
		for ci, row := range ps.Rows {
			if row.Config != cfgs[ci] {
				t.Fatalf("phase %s row %d is %q, want %q", ps.Phase, ci, row.Config, cfgs[ci])
			}
			if row.TimeSec <= 0 || row.AggIPC <= 0 {
				t.Fatalf("phase %s config %s has non-positive response: %+v", ps.Phase, row.Config, row)
			}
		}
	}
	// Sweeps are deterministic (and memo-served the second time).
	again, err := eng.Sweep(ctx, actor.SweepRequest{Bench: "SP"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, sweeps) {
		t.Error("repeated sweep diverged")
	}
}

func TestEngineSweepErrors(t *testing.T) {
	eng, _ := servingFixture(t)
	ctx := context.Background()
	if _, err := eng.Sweep(ctx, actor.SweepRequest{Bench: "NOPE"}); err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Errorf("unknown bench error = %v", err)
	}
	if _, err := eng.Sweep(ctx, actor.SweepRequest{Bench: "SP", Phases: []string{"nope"}}); err == nil || !strings.Contains(err.Error(), "no phase") {
		t.Errorf("unknown phase error = %v", err)
	}
}

func TestEngineOptionValidation(t *testing.T) {
	if _, err := actor.New(actor.WithTopology("not a descriptor")); err == nil {
		t.Error("New accepted a bad topology descriptor")
	}
	eng, err := actor.New(actor.WithFast())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Predict(context.Background(), actor.Rates{"IPC": 1}); err == nil || !strings.Contains(err.Error(), "no bank attached") {
		t.Errorf("predict without bank = %v", err)
	}
	if err := eng.RunStudy(context.Background(), nil, "nope", ""); err == nil || !strings.Contains(err.Error(), "unknown study") {
		t.Errorf("unknown study = %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	eng, bank := servingFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Sweep(ctx, actor.SweepRequest{Bench: "SP"}); err == nil {
		t.Error("cancelled sweep did not fail")
	}
	if _, err := bank.Predict(ctx, actor.Rates{"IPC": 1}); err == nil {
		t.Error("cancelled predict did not fail")
	}
	if _, err := eng.Train(ctx); err == nil {
		t.Error("cancelled train did not fail")
	}
}
