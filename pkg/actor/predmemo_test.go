package actor

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestPredictMemoRoundTrip(t *testing.T) {
	m := newPredictMemo()
	key := []byte("\x01\x00\x00\x00\x01\x00k")
	if got := m.get(key); got != nil {
		t.Fatalf("empty memo returned %q", got)
	}
	m.put(key, []byte("body"), 0)
	if got := m.get(key); !bytes.Equal(got, []byte("body")) {
		t.Fatalf("get = %q, want body", got)
	}
	// The installed entry owns copies: mutating the caller's slices must not
	// reach the cache (both are pooled scratch in the server).
	key2 := append([]byte(nil), key...)
	key[0] = 0xff
	if got := m.get(key2); !bytes.Equal(got, []byte("body")) {
		t.Fatalf("entry aliased the caller's key: get = %q", got)
	}
}

func TestPredictMemoBounded(t *testing.T) {
	m := newPredictMemo()
	total := memoSets * memoWays
	for i := 0; i < 4*total; i++ {
		m.put([]byte(fmt.Sprintf("key-%d", i)), []byte("r"), 0)
	}
	if n := m.entries(); n > total {
		t.Fatalf("memo holds %d entries, capacity is %d", n, total)
	}
	// Oversized responses are never cached.
	big := make([]byte, memoMaxResp+1)
	m.put([]byte("big"), big, 0)
	if m.get([]byte("big")) != nil {
		t.Fatal("oversized response was cached")
	}
}

// TestPredictMemoLRU fills one set and checks that the least-recently-used
// way is the one evicted.
func TestPredictMemoLRU(t *testing.T) {
	m := newPredictMemo()
	// Manufacture keys that all land in the same set.
	set := int(memoHash([]byte("seed")) & m.setMask)
	var keys [][]byte
	for i := 0; len(keys) < memoWays+1; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		if int(memoHash(k)&m.setMask) == set {
			keys = append(keys, k)
		}
	}
	for _, k := range keys[:memoWays] {
		m.put(k, k, 0)
	}
	// Touch every resident key except the first: it becomes the LRU victim.
	for _, k := range keys[1:memoWays] {
		if m.get(k) == nil {
			t.Fatalf("key %q missing before eviction", k)
		}
	}
	m.put(keys[memoWays], keys[memoWays], 0)
	if m.get(keys[0]) != nil {
		t.Errorf("LRU key %q survived eviction", keys[0])
	}
	for _, k := range keys[1:] {
		if got := m.get(k); !bytes.Equal(got, k) {
			t.Errorf("key %q = %q after eviction, want itself", k, got)
		}
	}
}

// TestPredictMemoConcurrent hammers overlapping keys from many goroutines;
// run under -race this is the lock-free probe's data-race check. Every hit
// must return the exact body installed for that key.
func TestPredictMemoConcurrent(t *testing.T) {
	m := newPredictMemo()
	const goroutines = 8
	const keySpace = 64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				id := (g*31 + i) % keySpace
				key := []byte(fmt.Sprintf("key-%d", id))
				want := []byte(fmt.Sprintf("resp-%d", id))
				if got := m.get(key); got != nil && !bytes.Equal(got, want) {
					t.Errorf("key %q returned %q", key, got)
					return
				}
				m.put(key, want, 0)
			}
		}(g)
	}
	wg.Wait()
}
