// Benchmark harness: one testing.B benchmark per table/figure in the
// paper's evaluation, plus micro-benchmarks for the core building blocks
// and ablation benchmarks for the design choices called out in DESIGN.md.
//
// The figure benchmarks report the paper-relevant headline metrics via
// b.ReportMetric, so `go test -bench=Fig -benchmem` regenerates both the
// performance and the reproduction numbers.
package actor_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	pubactor "github.com/greenhpc/actor/pkg/actor"

	"github.com/greenhpc/actor/internal/ann"
	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/dataset"
	"github.com/greenhpc/actor/internal/exp"
	"github.com/greenhpc/actor/internal/fleet"
	"github.com/greenhpc/actor/internal/kernels"
	"github.com/greenhpc/actor/internal/machine"
	"github.com/greenhpc/actor/internal/mlr"
	"github.com/greenhpc/actor/internal/npb"
	"github.com/greenhpc/actor/internal/omp"
	"github.com/greenhpc/actor/internal/pmu"
	"github.com/greenhpc/actor/internal/power"
	"github.com/greenhpc/actor/internal/topology"
)

// shared state for the expensive leave-one-out training, built once.
var (
	suiteOnce sync.Once
	suite     *exp.Suite
	looModels *exp.LOOModels
	suiteErr  error
)

func sharedSuite(b *testing.B) (*exp.Suite, *exp.LOOModels) {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = exp.NewSuite(exp.FastOptions())
		if suiteErr != nil {
			return
		}
		looModels, suiteErr = suite.TrainLeaveOneOut()
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite, looModels
}

// --- Figure benchmarks ---------------------------------------------------

func BenchmarkFig1ExecutionTimes(b *testing.B) {
	s, _ := sharedSuite(b)
	var last *exp.Fig1Result
	for i := 0; i < b.N; i++ {
		r, err := s.Fig1ExecutionTimes()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Speedup("BT", "4"), "BT-speedup4(paper=2.69)")
	b.ReportMetric(last.Speedup("IS", "4"), "IS-speedup4(paper=0.60)")
	b.ReportMetric(last.Speedup("MG", "2b"), "MG-speedup2b(paper=1.29)")
}

func BenchmarkFig2PhaseIPC(b *testing.B) {
	s, _ := sharedSuite(b)
	var last *exp.Fig2Result
	for i := 0; i < b.N; i++ {
		r, err := s.Fig2PhaseIPC("SP")
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	lo, hi := last.MaxIPCRange()
	b.ReportMetric(lo, "SP-minPhaseIPC(paper=0.32)")
	b.ReportMetric(hi, "SP-maxPhaseIPC(paper=4.64)")
}

func BenchmarkFig3PowerEnergy(b *testing.B) {
	s, _ := sharedSuite(b)
	var last *exp.Fig3Result
	for i := 0; i < b.N; i++ {
		r, err := s.Fig3PowerEnergy()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	p, e, err := last.GeoMeanNormalized("4", "1")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(p, "geomean-power-4v1(paper≈1.14)")
	b.ReportMetric(e, "geomean-energy-4v1")
}

func BenchmarkFig6PredictionCDF(b *testing.B) {
	s, loo := sharedSuite(b)
	var f6 *exp.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		f6, _, err = s.EvalPrediction(loo)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f6.MedianErr*100, "median-error-pct(paper=9.1)")
	b.ReportMetric(f6.FracUnder5*100, "under5-pct(paper=29.2)")
}

func BenchmarkFig7RankSelection(b *testing.B) {
	s, loo := sharedSuite(b)
	var f7 *exp.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		_, f7, err = s.EvalPrediction(loo)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f7.Hist.Fraction(1)*100, "rank1-pct(paper=59.3)")
	b.ReportMetric(f7.Hist.Fraction(2)*100, "rank2-pct(paper=28.8)")
}

func BenchmarkFig8Throttling(b *testing.B) {
	s, loo := sharedSuite(b)
	var r *exp.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.Fig8Throttling(loo)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric((1-r.AverageNormalized("Prediction", exp.MetricTime))*100, "perf-gain-pct(paper=6.5)")
	b.ReportMetric((1-r.AverageNormalized("Prediction", exp.MetricED2))*100, "ed2-saving-pct(paper=17.2)")
	b.ReportMetric((1-r.Normalized("IS", "Prediction", exp.MetricED2))*100, "IS-ed2-saving-pct(paper=71.6)")
}

// BenchmarkExtensionDVFS reports the joint concurrency+DVFS study's AVG
// normalised ED² per strategy.
func BenchmarkExtensionDVFS(b *testing.B) {
	s, _ := sharedSuite(b)
	var r *exp.DVFSResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.DVFSStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := func(col string) float64 {
		var sum float64
		for _, bench := range r.Order {
			sum += r.ED2[bench][col]
		}
		return sum / float64(len(r.Order))
	}
	b.ReportMetric(avg("concurrency-only"), "conc-only-ED2")
	b.ReportMetric(avg("dvfs-only"), "dvfs-only-ED2")
	b.ReportMetric(avg("joint"), "joint-ED2")
}

// BenchmarkExtensionFutureScaling reports the oracle throttling gain at 4
// and 32 cores.
func BenchmarkExtensionFutureScaling(b *testing.B) {
	s, _ := sharedSuite(b)
	var r *exp.FutureScalingResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.FutureScaling()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AverageGain(4)*100, "gain4cores-pct")
	b.ReportMetric(r.AverageGain(32)*100, "gain32cores-pct")
}

// BenchmarkExtensionHeteroScaling reports the oracle throttling gain on the
// default heterogeneous scenarios (64-core homogeneous baseline up to the
// 128-core big/little part), exercising the balanced placement enumeration
// and the class-aware sweep solve end to end.
func BenchmarkExtensionHeteroScaling(b *testing.B) {
	s, _ := sharedSuite(b)
	var r *exp.HeteroScalingResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = s.HeteroScaling(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AverageGain("64 big")*100, "gain64big-pct")
	b.ReportMetric(r.AverageGain("64b+64L")*100, "gain128hetero-pct")
}

// BenchmarkStrategyReplay measures the execute() engine's per-iteration
// replay: since PR 4 each phase's placement responses are precomputed on
// the batched sweep path and iterations only copy rows (plus in-order
// noise), so this tracks the whole-benchmark strategy replay throughput.
func BenchmarkStrategyReplay(b *testing.B) {
	m, err := machine.New(topology.QuadCoreXeon())
	if err != nil {
		b.Fatal(err)
	}
	m = m.WithMemo()
	env := core.NewEnv(m, m, power.Default())
	bench, _ := npb.ByName("SP")
	strat := &core.Static{Config: "4"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strat.Run(bench, env); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices from DESIGN.md) ------------------

// BenchmarkAblationANNvsMLR compares the paper's ANN ensembles against the
// prior-work multiple-linear-regression predictor on identical data.
func BenchmarkAblationANNvsMLR(b *testing.B) {
	s, _ := sharedSuite(b)
	collector := dataset.NewCollector(s.Noisy, s.Truth)
	collector.Repetitions = 3
	samples, err := collector.CollectSuite(s.Benches)
	if err != nil {
		b.Fatal(err)
	}
	train := dataset.LeaveOneOut(samples, "SP")
	test := samples["SP"]
	events := pmu.FullEventSet()

	evalPred := func(p core.Predictor) float64 {
		var errSum float64
		var n int
		for _, ps := range test {
			preds, err := p.PredictIPC(ps.Rates)
			if err != nil {
				b.Fatal(err)
			}
			for _, tgt := range exp.TargetConfigs {
				obs := ps.MeasuredIPC[tgt]
				if obs > 0 {
					d := (preds[tgt] - obs) / obs
					if d < 0 {
						d = -d
					}
					errSum += d
					n++
				}
			}
		}
		return errSum / float64(n)
	}

	legacy := ann.DefaultConfig()
	legacy.MaxEpochs = 150
	batched := legacy
	batched.BatchSize = 8
	batched.WarmStartEpochs = 30
	// legacy trains per-sample from cold starts; batched is the fast
	// trainer's pipeline configuration (mini-batch GEMM + warm-start fold
	// fine-tuning, see exp.FastOptions) — snapshots track its accuracy/cost
	// tradeoff against both the legacy path and MLR.
	for _, mode := range []struct {
		name string
		cfg  ann.Config
	}{{"legacy", legacy}, {"batched", batched}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var annErr, mlrErr float64
			for i := 0; i < b.N; i++ {
				annBank, err := core.TrainANNBank(train, []int{12}, exp.TargetConfigs, 5, mode.cfg)
				if err != nil {
					b.Fatal(err)
				}
				mlrBank, err := core.TrainMLRBank(train, []int{12}, exp.TargetConfigs, 1e-6)
				if err != nil {
					b.Fatal(err)
				}
				annErr = evalPred(annBank.Predictors()[0])
				mlrErr = evalPred(mlrBank.Predictors()[0])
			}
			b.ReportMetric(annErr*100, "ann-mean-error-pct")
			b.ReportMetric(mlrErr*100, "mlr-mean-error-pct")
		})
	}
	_ = events
}

// BenchmarkAblationEnsembleSize measures accuracy and cost of k-fold
// ensembles (k = 3, 10) against a single network.
func BenchmarkAblationEnsembleSize(b *testing.B) {
	s, _ := sharedSuite(b)
	collector := dataset.NewCollector(s.Noisy, s.Truth)
	collector.Repetitions = 3
	samples, err := collector.CollectSuite(s.Benches)
	if err != nil {
		b.Fatal(err)
	}
	train := dataset.LeaveOneOut(samples, "CG")
	events := pmu.FullEventSet()
	ss, err := dataset.ToSamples(train, events, "2b")
	if err != nil {
		b.Fatal(err)
	}
	legacy := ann.DefaultConfig()
	legacy.MaxEpochs = 120
	batched := legacy
	batched.BatchSize = 8
	batched.WarmStartEpochs = 30
	for _, k := range []int{3, 10} {
		k := k
		kName := map[int]string{3: "k3", 10: "k10"}[k]
		for _, mode := range []struct {
			name string
			cfg  ann.Config
		}{{"legacy", legacy}, {"batched", batched}} {
			mode := mode
			b.Run(kName+"/"+mode.name, func(b *testing.B) {
				var est float64
				for i := 0; i < b.N; i++ {
					ens, err := ann.TrainEnsemble(ss, k, mode.cfg)
					if err != nil {
						b.Fatal(err)
					}
					est = ens.EstimateMSE
				}
				b.ReportMetric(est, "estimate-mse")
			})
		}
	}
}

// BenchmarkAblationSearchVsPrediction compares the online cost and outcome
// of empirical search [17] against ANN prediction on a short-iteration
// benchmark, where search overhead hurts most.
func BenchmarkAblationSearchVsPrediction(b *testing.B) {
	s, loo := sharedSuite(b)
	env := core.NewEnv(s.Noisy, s.Truth, s.Power)
	is, err := s.Bench("IS")
	if err != nil {
		b.Fatal(err)
	}
	var tSearch, tPred float64
	for i := 0; i < b.N; i++ {
		rs, err := (&core.Search{ProbesPerConfig: 1}).Run(is, env)
		if err != nil {
			b.Fatal(err)
		}
		rp, err := (&core.Prediction{Bank: loo.Banks["IS"]}).Run(is, env)
		if err != nil {
			b.Fatal(err)
		}
		tSearch, tPred = rs.TimeSec, rp.TimeSec
	}
	b.ReportMetric(tSearch, "search-time-sec")
	b.ReportMetric(tPred, "prediction-time-sec")
}

// BenchmarkAblationHiddenTopology compares single- and two-hidden-layer
// network topologies on identical training data (the paper cites the
// universal-approximation property of three-layer nets; this quantifies
// whether depth buys anything here).
func BenchmarkAblationHiddenTopology(b *testing.B) {
	s, _ := sharedSuite(b)
	collector := dataset.NewCollector(s.Noisy, s.Truth)
	collector.Repetitions = 3
	samples, err := collector.CollectSuite(s.Benches)
	if err != nil {
		b.Fatal(err)
	}
	train := dataset.LeaveOneOut(samples, "LU")
	ss, err := dataset.ToSamples(train, pmu.FullEventSet(), "2b")
	if err != nil {
		b.Fatal(err)
	}
	for _, topo := range []struct {
		name   string
		hidden []int
	}{
		{"h16", []int{16}},
		{"h8", []int{8}},
		{"h16x8", []int{16, 8}},
	} {
		topo := topo
		b.Run(topo.name, func(b *testing.B) {
			cfg := ann.DefaultConfig()
			cfg.MaxEpochs = 120
			cfg.Hidden = topo.hidden
			var est float64
			for i := 0; i < b.N; i++ {
				ens, err := ann.TrainEnsemble(ss, 5, cfg)
				if err != nil {
					b.Fatal(err)
				}
				est = ens.EstimateMSE
			}
			b.ReportMetric(est, "estimate-mse")
		})
	}
}

// --- Fleet scheduling benchmarks ------------------------------------------

// fleetBench builds the seeded fleet + job stream pair the fleet
// benchmarks share. The spec lists the superset-shape class first so the
// canonical (congestion, index) order probes universally-feasible
// machines before the packed-only ones.
func fleetBench(b *testing.B, spec string, jobs int, rate float64) (*fleet.Fleet, []fleet.Job) {
	b.Helper()
	f, err := fleet.ParseFleet(spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	stream, err := fleet.GenJobs(fleet.StreamConfig{Jobs: jobs, Seed: 42, ArrivalRate: rate, MeanSize: 3})
	if err != nil {
		b.Fatal(err)
	}
	return f, stream
}

// BenchmarkFleetSchedule is the PR 9 headline: 10k jobs against a 1000
// machine heterogeneous fleet. The incremental sub-benchmark is the
// shipped scorer (treap probe order + sharded score memo); naive is the
// O(M)-per-decision bit-identity reference, so the ns/op ratio between
// the two sub-benchmarks is the measured speedup (target ≥10×). Every
// naive iteration asserts its schedule digest matches the incremental
// scorer's, keeping the fast path honest inside the benchmark itself.
func BenchmarkFleetSchedule(b *testing.B) {
	const spec = "400*4x2+2x2:little,600*2x2"
	f, stream := fleetBench(b, spec, 10000, 60)
	ref, err := fleet.Schedule(f, stream, fleet.Options{})
	if err != nil {
		b.Fatal(err)
	}
	bp, err := fleet.Schedule(f, stream, fleet.Options{Scorer: fleet.ScorerBinpack})
	if err != nil {
		b.Fatal(err)
	}
	for _, scorer := range []string{fleet.ScorerIncremental, fleet.ScorerNaive} {
		scorer := scorer
		b.Run(scorer, func(b *testing.B) {
			var res *fleet.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = fleet.Schedule(f, stream, fleet.Options{Scorer: scorer})
				if err != nil {
					b.Fatal(err)
				}
				if res.Digest() != ref.Digest() {
					b.Fatalf("%s digest %016x != incremental %016x", scorer, res.Digest(), ref.Digest())
				}
			}
			b.ReportMetric(float64(res.ScoredMachines)/float64(len(stream)), "scored-machines/job")
			b.ReportMetric(res.ED2/bp.ED2, "ED2-vs-binpack")
			b.ReportMetric(float64(res.Violations), "qos-violations")
		})
	}
}

// BenchmarkFleetScheduleSmall is the trend-friendly variant: a 16-machine
// mixed fleet under the same policy, cheap enough for -benchtime scaling
// to produce stable ns/op on both scorers.
func BenchmarkFleetScheduleSmall(b *testing.B) {
	f, stream := fleetBench(b, "12*2x2,4*1x4+2x2:little", 200, 2)
	for _, scorer := range []string{fleet.ScorerIncremental, fleet.ScorerNaive} {
		scorer := scorer
		b.Run(scorer, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Schedule(f, stream, fleet.Options{Scorer: scorer}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Micro-benchmarks ------------------------------------------------------

func BenchmarkMachineRunPhase(b *testing.B) {
	m, err := machine.New(topology.QuadCoreXeon())
	if err != nil {
		b.Fatal(err)
	}
	bench, _ := npb.ByName("SP")
	cfg, _ := topology.ConfigByName("4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunPhase(&bench.Phases[i%len(bench.Phases)], bench.Idiosyncrasy, cfg)
	}
}

// BenchmarkRunPhaseCached measures the memoised replay path: the same
// (phase, placement) pairs every timestep, as strategy replays and figure
// drivers see them (compare against BenchmarkMachineRunPhase for the
// cache's speedup).
func BenchmarkRunPhaseCached(b *testing.B) {
	m, err := machine.New(topology.QuadCoreXeon())
	if err != nil {
		b.Fatal(err)
	}
	m = m.WithMemo()
	bench, _ := npb.ByName("SP")
	cfg, _ := topology.ConfigByName("4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunPhase(&bench.Phases[i%len(bench.Phases)], bench.Idiosyncrasy, cfg)
	}
	b.StopTimer()
	hits, misses := m.MemoStats()
	if total := hits + misses; total > 0 {
		b.ReportMetric(float64(hits)/float64(total)*100, "hit-rate-pct")
	}
}

// BenchmarkLOOTrainParallel measures the full leave-one-out pipeline —
// suite-wide sample collection plus per-benchmark bank training — on the
// parallel engine at the current GOMAXPROCS.
func BenchmarkLOOTrainParallel(b *testing.B) {
	s, err := exp.NewSuite(exp.FastOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TrainLeaveOneOut(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkANNForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net, err := ann.NewNetwork([]int{13, 16, 1}, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 13)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Predict(x)
	}
}

func BenchmarkANNTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]ann.Sample, 200)
	for i := range samples {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		samples[i] = ann.Sample{X: x, Y: x[0]*x[1] - x[2]}
	}
	cfg := ann.DefaultConfig()
	cfg.MaxEpochs = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ann.Train(samples[:160], samples[160:], cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkANNTrainBatched is BenchmarkANNTrain on the mini-batch GEMM
// engine (Config.BatchSize = 8) — the inner-loop configuration the
// evaluation pipeline trains with (see exp.FastOptions).
func BenchmarkANNTrainBatched(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]ann.Sample, 200)
	for i := range samples {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		samples[i] = ann.Sample{X: x, Y: x[0]*x[1] - x[2]}
	}
	cfg := ann.DefaultConfig()
	cfg.MaxEpochs = 50
	cfg.BatchSize = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ann.Train(samples[:160], samples[160:], cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Per-kernel microbenchmarks -------------------------------------------
//
// Each benchmark drives one dispatched hot kernel at the trainer's own
// shape ([13,16,1] network, batch 8), measuring whichever implementation
// (scalar or AVX2) this machine bound at startup — see PERFORMANCE.md.

func BenchmarkDenseForward(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	const batch, inDim, units = 8, 13, 16
	x := make([]float64, batch*inDim)
	w := make([]float64, units*(inDim+1))
	out := make([]float64, batch*units)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ann.DenseForwardKernel(out, x, w, batch, inDim, units, inDim, true)
	}
}

func BenchmarkHiddenDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	const batch, units, unitsNext = 8, 16, 1
	dNext := make([]float64, batch*unitsNext)
	wNext := make([]float64, unitsNext*(units+1))
	acts := make([]float64, batch*units)
	d := make([]float64, batch*units)
	for i := range dNext {
		dNext[i] = rng.NormFloat64()
	}
	for i := range wNext {
		wNext[i] = rng.NormFloat64()
	}
	for i := range acts {
		acts[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ann.HiddenDeltaKernel(d, dNext, wNext, acts, batch, units, unitsNext)
	}
}

func BenchmarkSGDStep(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	const batch, units, inDim = 8, 16, 13
	w := make([]float64, units*(inDim+1))
	vel := make([]float64, units*(inDim+1))
	d := make([]float64, batch*units)
	x := make([]float64, batch*inDim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ann.SGDStepKernel(w, vel, d, x, batch, units, inDim, inDim, 0.01, 0.9)
	}
}

func BenchmarkSweepLanes(b *testing.B) {
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += machine.AdvanceLanesBench(64, 16)
	}
	_ = sink
}

func BenchmarkMLRFit(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]ann.Sample, 400)
	for i := range samples {
		x := make([]float64, 13)
		for j := range x {
			x[j] = rng.Float64()
		}
		samples[i] = ann.Sample{X: x, Y: x[0] + 2*x[5]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mlr.Fit(samples, 1e-8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPMURotation(b *testing.B) {
	file, err := pmu.NewCounterFile(2)
	if err != nil {
		b.Fatal(err)
	}
	truth := pmu.Counts{
		pmu.Instructions: 1e9, pmu.Cycles: 2e9,
		pmu.L2Misses: 1e6, pmu.BusTransMem: 2e6, pmu.L1DMisses: 5e6,
		pmu.L2References: 6e6, pmu.BusDrdyClocks: 1e8, pmu.ResourceStalls: 9e8,
		pmu.LoadsRetired: 2e8, pmu.StoresRetired: 1e8, pmu.DTLBMisses: 1e5,
		pmu.BranchesRet: 8e7, pmu.BranchMisses: 1e6, pmu.L1DReferences: 3e8,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := pmu.PlanRotation(pmu.FullEventSet(), 2, 0)
		if err != nil {
			b.Fatal(err)
		}
		s := pmu.NewSampler(file, plan)
		for !s.Done() {
			if err := s.Observe(truth); err != nil {
				b.Fatal(err)
			}
		}
		s.Rates()
	}
}

func BenchmarkKernels(b *testing.B) {
	for _, k := range kernels.All(1) {
		k := k
		b.Run(k.Name(), func(b *testing.B) {
			team := omp.NewTeam(2, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Step(team)
			}
		})
	}
}

func BenchmarkOMPParallelFor(b *testing.B) {
	team := omp.NewTeam(4, false)
	data := make([]float64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		team.ParallelBlocks(len(data), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				data[j] = data[j]*0.5 + 1
			}
		})
	}
}

// benchBody is a rewindable no-op-Close request body so the serving
// benchmarks can reuse a single http.Request across iterations.
type benchBody struct{ bytes.Reader }

func (*benchBody) Close() error { return nil }

// benchWriter is a ResponseWriter that keeps its header map across
// iterations and discards the body. httptest.NewRecorder allocates a
// recorder, a header map and a bytes.Buffer per request, which would
// drown out the handler's own allocation profile — the quantity under
// test now that the memo-hit path is supposed to be allocation-free.
type benchWriter struct {
	h    http.Header
	code int
	n    int
}

func (w *benchWriter) Header() http.Header  { return w.h }
func (w *benchWriter) WriteHeader(code int) { w.code = code }
func (w *benchWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// newServeBench trains a fast ANN bank, builds a server and returns the
// pieces of a zero-allocation request loop: a reusable request with a
// rewindable body, the raw body bytes and a header-preserving writer.
func newServeBench(b *testing.B) (srv *pubactor.Server, req *http.Request, rdr *benchBody, body []byte, w *benchWriter) {
	eng, err := pubactor.New(pubactor.WithFast(), pubactor.WithRepetitions(1))
	if err != nil {
		b.Fatal(err)
	}
	bank, err := eng.Train(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	srv, err = pubactor.NewServer(eng)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	rates := pubactor.Rates{"IPC": 1.1}
	for i, name := range bank.Meta().EventSets[0] {
		rates[name] = 0.001 * float64(i+1)
	}
	body, err = json.Marshal(pubactor.PredictRequest{Rates: rates})
	if err != nil {
		b.Fatal(err)
	}
	rdr = &benchBody{}
	req = httptest.NewRequest(http.MethodPost, "/v1/predict", nil)
	req.Body = rdr
	w = &benchWriter{h: make(http.Header)}
	return srv, req, rdr, body, w
}

// BenchmarkServePredict measures online serving throughput through the
// public facade: one /v1/predict request per iteration against the actord
// HTTP handler over a fast-trained ANN bank, reporting requests per second
// alongside ns/op. Steady state this is the memo-hit path — pooled body
// read, wire-codec parse, memo probe, one Write — and must not allocate.
func BenchmarkServePredict(b *testing.B) {
	srv, req, rdr, body, w := newServeBench(b)
	// Warm the pools, the memo entry and the writer's header map so the
	// timed loop measures steady state.
	rdr.Reset(body)
	srv.ServeHTTP(w, req)
	if w.code != http.StatusOK {
		b.Fatalf("predict = %d", w.code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rdr.Reset(body)
		w.code = 0
		srv.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("predict = %d", w.code)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServePredictMiss is the same request loop with the prediction
// memo disabled: every iteration pays decode + bank inference + wire
// encode. The gap to BenchmarkServePredict is the memo's win; this
// benchmark keeps the uncached path honest in the trend gate.
func BenchmarkServePredictMiss(b *testing.B) {
	b.Setenv("ACTOR_PREDICT_MEMO", "off")
	srv, req, rdr, body, w := newServeBench(b)
	rdr.Reset(body)
	srv.ServeHTTP(w, req)
	if w.code != http.StatusOK {
		b.Fatalf("predict = %d", w.code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rdr.Reset(body)
		w.code = 0
		srv.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("predict = %d", w.code)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkRecalObserve is BenchmarkServePredict with the online
// recalibration loop enabled: steady state is the memo-hit path plus one
// observation-store ingest per request (phase hash, rate vector copy,
// reservoir admission, per-phase error EWMA). The recal tax must not break
// the fast path's zero-allocation invariant — the store preallocates every
// buffer and the observation rides the pooled scratch.
func BenchmarkRecalObserve(b *testing.B) {
	srv, req, rdr, body, w := newServeBench(b)
	if _, err := srv.EnableRecalibration(pubactor.RecalConfig{}); err != nil {
		b.Fatal(err)
	}
	rdr.Reset(body)
	srv.ServeHTTP(w, req)
	if w.code != http.StatusOK {
		b.Fatalf("predict = %d", w.code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rdr.Reset(body)
		w.code = 0
		srv.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			b.Fatalf("predict = %d", w.code)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
