module github.com/greenhpc/actor

go 1.24
