// Command actorsim reproduces the paper's evaluation on the simulated
// quad-core Xeon platform — or, with -topology, on any machine described
// by a compact topology descriptor. Each subcommand regenerates one
// figure; "all" runs the complete evaluation.
//
// Usage:
//
//	actorsim [flags] {scalability|phases|power|accuracy|ranks|throttle|extensions|hetero|generalize|robustness|all}
//
// Flags:
//
//	-seed N      experiment seed (default 42)
//	-fast        use the reduced-fidelity training options (quicker)
//	-bench B     benchmark for the "phases" subcommand (default SP)
//	-topology D  run on the machine described by D instead of the
//	             quad-core Xeon, e.g. "16x2" (32 homogeneous cores) or
//	             "16x4+32x2:little" (a 128-core big/little part); see
//	             topology.ParseDesc for the grammar
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/greenhpc/actor/internal/exp"
	"github.com/greenhpc/actor/internal/topology"
)

func main() {
	seed := flag.Int64("seed", 42, "experiment seed")
	fast := flag.Bool("fast", false, "use reduced-fidelity training options")
	bench := flag.String("bench", "SP", "benchmark for the phases subcommand")
	topoDesc := flag.String("topology", "", "topology descriptor (default: the paper's quad-core Xeon)")
	flag.Parse()

	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}

	opts := exp.DefaultOptions()
	if *fast {
		opts = exp.FastOptions()
	}
	opts.Seed = *seed
	if *topoDesc != "" {
		topo, err := topology.ParseDesc(*topoDesc)
		if err != nil {
			fatal(err)
		}
		opts.Topology = topo
	}

	suite, err := exp.NewSuite(opts)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "scalability":
		run1(suite)
	case "phases":
		run2(suite, *bench)
	case "power":
		run3(suite)
	case "accuracy":
		loo := train(suite)
		run67(suite, loo, true, false)
	case "ranks":
		loo := train(suite)
		run67(suite, loo, false, true)
	case "throttle":
		loo := train(suite)
		run8(suite, loo)
	case "extensions":
		runExtensions(suite)
	case "hetero":
		h, err := suite.HeteroScaling(nil)
		if err != nil {
			fatal(err)
		}
		h.Render(os.Stdout)
	case "generalize":
		g, err := suite.Generalize(12)
		if err != nil {
			fatal(err)
		}
		g.Render(os.Stdout)
	case "robustness":
		r, err := exp.Robustness(opts, []int64{11, 22, 33, 44, 55})
		if err != nil {
			fatal(err)
		}
		r.Render(os.Stdout)
	case "all":
		run1(suite)
		run2(suite, *bench)
		run3(suite)
		loo := train(suite)
		run67(suite, loo, true, true)
		run8(suite, loo)
		runExtensions(suite)
	default:
		fatal(fmt.Errorf("unknown subcommand %q", cmd))
	}
}

func train(s *exp.Suite) *exp.LOOModels {
	fmt.Fprintln(os.Stderr, "training leave-one-out ANN ensembles...")
	loo, err := s.TrainLeaveOneOut()
	if err != nil {
		fatal(err)
	}
	return loo
}

func run1(s *exp.Suite) {
	r, err := s.Fig1ExecutionTimes()
	if err != nil {
		fatal(err)
	}
	r.Render(os.Stdout)
}

func run2(s *exp.Suite, bench string) {
	r, err := s.Fig2PhaseIPC(bench)
	if err != nil {
		fatal(err)
	}
	r.Render(os.Stdout)
}

func run3(s *exp.Suite) {
	r, err := s.Fig3PowerEnergy()
	if err != nil {
		fatal(err)
	}
	r.Render(os.Stdout)
}

func run67(s *exp.Suite, loo *exp.LOOModels, show6, show7 bool) {
	f6, f7, err := s.EvalPrediction(loo)
	if err != nil {
		fatal(err)
	}
	if show6 {
		f6.Render(os.Stdout)
	}
	if show7 {
		f7.Render(os.Stdout)
	}
}

func run8(s *exp.Suite, loo *exp.LOOModels) {
	r, err := s.Fig8Throttling(loo)
	if err != nil {
		fatal(err)
	}
	r.Render(os.Stdout)
}

func runExtensions(s *exp.Suite) {
	dv, err := s.DVFSStudy()
	if err != nil {
		fatal(err)
	}
	dv.Render(os.Stdout)
	fs, err := s.FutureScaling()
	if err != nil {
		fatal(err)
	}
	fs.Render(os.Stdout)
	cs, err := s.CoScheduling()
	if err != nil {
		fatal(err)
	}
	cs.Render(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actorsim:", err)
	os.Exit(1)
}
