// Command actorsim reproduces the paper's evaluation on the simulated
// quad-core Xeon platform — or, with -topology, on any machine described
// by a compact topology descriptor. Each subcommand regenerates one
// figure; "all" runs the complete evaluation. Everything runs through the
// public pkg/actor facade.
//
// Usage:
//
//	actorsim [flags] {scalability|phases|power|accuracy|ranks|throttle|extensions|hetero|generalize|robustness|all}
//
// Flags:
//
//	-seed N      experiment seed (default 42)
//	-fast        use the reduced-fidelity training options (quicker)
//	-bench B     benchmark for the "phases" subcommand (default SP)
//	-topology D  run on the machine described by D instead of the
//	             quad-core Xeon, e.g. "16x2" (32 homogeneous cores) or
//	             "16x4+32x2:little" (a 128-core big/little part)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/greenhpc/actor/pkg/actor"
)

func main() {
	f := actor.BindFlags(flag.CommandLine, actor.FlagsPlatform)
	bench := flag.String("bench", "SP", "benchmark for the phases subcommand")
	flag.Parse()

	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}

	eng, err := f.Engine()
	if err != nil {
		fatal(err)
	}
	if err := eng.RunStudy(context.Background(), os.Stdout, cmd, *bench); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actorsim:", err)
	os.Exit(1)
}
