// Command actor-train performs ACTOR's offline training phase through the
// public facade: it collects counter samples from the benchmark suite on
// the simulated platform (the paper's quad-core Xeon, or any -topology
// descriptor), trains the predictor bank, and writes it in the versioned
// bank format that cmd/actor-predict and cmd/actord load.
//
// Usage:
//
//	actor-train [-bank PATH] [-seed N] [-folds K] [-fast] [-topology D] [-mlr] [-loo]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/greenhpc/actor/pkg/actor"
)

func main() {
	f := actor.BindFlags(flag.CommandLine)
	loo := flag.Bool("loo", false, "write one leave-one-out bank per benchmark (default: one bank over the full suite)")
	flag.Parse()

	eng, err := f.Engine()
	if err != nil {
		fatal(err)
	}
	if dir := filepath.Dir(f.Bank); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
	}
	ctx := context.Background()

	if *loo {
		banks, err := eng.TrainLeaveOneOut(ctx)
		if err != nil {
			fatal(err)
		}
		names := make([]string, 0, len(banks))
		for name := range banks {
			names = append(names, name)
		}
		sort.Strings(names)
		dir := filepath.Dir(f.Bank)
		for _, name := range names {
			if err := banks[name].Save(filepath.Join(dir, "loo-"+name+".json")); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d leave-one-out banks to %s\n", len(names), dir)
		return
	}

	// Whole-suite bank: the deployment scenario the paper describes ("the
	// model would generally be trained a single time ... and subsequently
	// used for any desired application").
	bank, err := eng.Train(ctx)
	if err != nil {
		fatal(err)
	}
	if err := bank.Save(f.Bank); err != nil {
		fatal(err)
	}
	meta := bank.Meta()
	fmt.Printf("wrote %s bank (%d event sets, %d configs) to %s\n",
		meta.Kind, len(meta.EventSets), len(meta.Configs), f.Bank)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actor-train:", err)
	os.Exit(1)
}
