// Command actor-train performs ACTOR's offline training phase: it collects
// counter samples from the benchmark suite on the simulated platform,
// trains the leave-one-out ANN ensembles (or a single model over the whole
// suite), and writes them as JSON for cmd/actor-predict and embedding in
// other tools.
//
// Usage:
//
//	actor-train [-out DIR] [-seed N] [-folds K] [-fast] [-loo]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/dataset"
	"github.com/greenhpc/actor/internal/exp"
	"github.com/greenhpc/actor/internal/npb"
)

func main() {
	out := flag.String("out", "models", "output directory for model JSON files")
	seed := flag.Int64("seed", 42, "training seed")
	folds := flag.Int("folds", 10, "cross-validation folds")
	fast := flag.Bool("fast", false, "reduced-fidelity training")
	loo := flag.Bool("loo", false, "write one leave-one-out model per benchmark (default: one model over the full suite)")
	flag.Parse()

	opts := exp.DefaultOptions()
	if *fast {
		opts = exp.FastOptions()
	}
	opts.Seed = *seed
	opts.Folds = *folds

	suite, err := exp.NewSuite(opts)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	if *loo {
		looModels, err := suite.TrainLeaveOneOut()
		if err != nil {
			fatal(err)
		}
		for _, b := range suite.Benches {
			bank := looModels.Banks[b.Name]
			pred := bank.Predictors()[0].(*core.ANNPredictor)
			if err := write(*out, "loo-"+b.Name+".json", pred); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d leave-one-out models to %s\n", len(suite.Benches), *out)
		return
	}

	// Whole-suite model: the deployment scenario the paper describes
	// ("the model would generally be trained a single time ... and
	// subsequently used for any desired application").
	collector := dataset.NewCollector(suite.Noisy, suite.Truth)
	collector.Repetitions = opts.Repetitions
	suiteSamples, err := collector.CollectSuite(suite.Benches)
	if err != nil {
		fatal(err)
	}
	var all []dataset.PhaseSample
	for _, name := range npb.Names() {
		all = append(all, suiteSamples[name]...)
	}
	for _, ec := range []int{12, 4, 2} {
		bank, err := core.TrainANNBank(all, []int{ec}, exp.TargetConfigs, opts.Folds, opts.ANN)
		if err != nil {
			fatal(err)
		}
		pred := bank.Predictors()[0].(*core.ANNPredictor)
		name := fmt.Sprintf("suite-%devents.json", ec)
		if err := write(*out, name, pred); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote suite models (12/4/2 events, %d-fold ensembles) to %s\n", opts.Folds, *out)
}

func write(dir, name string, pred *core.ANNPredictor) error {
	data, err := core.MarshalPredictor(pred)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actor-train:", err)
	os.Exit(1)
}
