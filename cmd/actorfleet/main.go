// Command actorfleet runs the cluster-scale interference-aware scheduling
// study: a seeded stream of jobs carrying NPB phase signatures arrives at
// a fleet of heterogeneous machines, and the fleet scheduler places each
// under a QoS degradation bound, reporting fleet ED², utilization and
// slowdowns against the naive bin-packing baseline.
//
//	actorfleet -fleet "600*2x2,400*4x2+2x2:little" -jobs 10000 -rate 8
//	actorfleet -jobs 100 -machines "16*2x2" -digest   # CI smoke mode
//
// ACTOR_FLEET_SCORER=naive forces the O(M) reference scorer (the fleet
// sibling of ACTOR_SIMD=off); -scorer overrides both.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/greenhpc/actor/internal/fleet"
	"github.com/greenhpc/actor/internal/report"
)

func main() {
	var (
		spec     = flag.String("fleet", "64*2x2", "fleet spec: comma-separated count*topology-descriptor terms")
		jobs     = flag.Int("jobs", 1000, "number of jobs in the arrival stream")
		seed     = flag.Int64("seed", 42, "stream seed")
		rate     = flag.Float64("rate", 4, "mean arrival rate (jobs/sec)")
		meanSize = flag.Float64("meansize", 3, "mean job size in iterations (bounded Pareto)")
		qos      = flag.Float64("qos", 0.25, "QoS degradation bound (admissible slowdown = 1+qos)")
		scorer   = flag.String("scorer", "", "placement scorer: incremental, naive or binpack (default: $ACTOR_FLEET_SCORER or incremental)")
		probe    = flag.Int("probe", 8, "incremental scorer probe batch width")
		compare  = flag.Bool("compare", true, "also run the bin-packing baseline and report the delta")
		digest   = flag.Bool("digest", false, "print only the schedule digest and violation count (CI smoke mode)")
	)
	flag.Parse()

	f, err := fleet.ParseFleet(*spec, nil)
	fail(err)
	stream, err := fleet.GenJobs(fleet.StreamConfig{
		Jobs: *jobs, Seed: *seed, ArrivalRate: *rate, MeanSize: *meanSize,
	})
	fail(err)

	opt := fleet.Options{QoS: *qos, Scorer: *scorer, ProbeWidth: *probe}
	t0 := time.Now()
	res, err := fleet.Schedule(f, stream, opt)
	fail(err)
	wall := time.Since(t0)

	if *digest {
		fmt.Printf("digest=%016x violations=%d scorer=%s\n", res.Digest(), res.Violations, res.Scorer)
		return
	}

	w := os.Stdout
	report.Section(w, "Fleet scheduling study")
	fmt.Fprintf(w, "fleet %s (%d machines, %d cores), %d jobs, seed %d\n\n",
		*spec, f.Machines(), f.TotalCores(), *jobs, *seed)

	t := report.NewTable("schedule", "scorer", "wall", "scored", "makespan", "ED2", "util", "mean-slow", "max-slow", "mean-wait", "viol")
	row := func(r *fleet.Result, wall time.Duration) {
		t.AddRow(r.Scorer, wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", r.ScoredMachines),
			fmt.Sprintf("%.1fs", r.Makespan),
			fmt.Sprintf("%.3g", r.ED2),
			fmt.Sprintf("%.1f%%", 100*r.CoreUtil),
			fmt.Sprintf("%.3f", r.MeanSlowdown),
			fmt.Sprintf("%.3f", r.MaxSlowdown),
			fmt.Sprintf("%.2fs", r.MeanWait),
			fmt.Sprintf("%d", r.Violations))
	}
	row(res, wall)

	if *compare && res.Scorer != fleet.ScorerBinpack {
		bopt := opt
		bopt.Scorer = fleet.ScorerBinpack
		t0 = time.Now()
		bp, err := fleet.Schedule(f, stream, bopt)
		fail(err)
		row(bp, time.Since(t0))
		t.Render(w)
		fmt.Fprintf(w, "\nED2 vs binpack: %.3f× (lower is better), violations %d vs %d\n",
			res.ED2/bp.ED2, res.Violations, bp.Violations)
	} else {
		t.Render(w)
	}
	fmt.Fprintf(w, "schedule digest %016x\n", res.Digest())
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "actorfleet:", err)
		os.Exit(1)
	}
}
