// Command actord serves a trained predictor bank over HTTP JSON: the
// online half of the paper run as a long-lived service. It loads the bank
// at startup, reconstructs the platform the bank was trained for (its
// topology descriptor rides inside the bank), and serves:
//
//	GET  /healthz     liveness probe
//	GET  /readyz      readiness probe (503 while loading, draining or saturated)
//	GET  /v1/bank     bank metadata (topology, configs, event sets)
//	POST /v1/predict  observed rates → ranked configurations
//	POST /v1/sweep    benchmark phases → per-placement modelled responses
//	POST /v1/eval     one shard of a distributed sweep (see cmd/actorctl)
//
// Concurrent sweep requests are micro-batched into shared phase-sweep
// calls over the engine's sharded memo. See docs/SERVING.md for a
// train → save → serve → curl walkthrough and the distributed-evaluation
// quickstart.
//
// With -recal the online recalibration loop runs alongside serving:
// predict traffic feeds a drift detector, drift (or POST /v1/recal/trigger)
// starts a shadow retrain warm-started from the live bank, validated
// candidates are swapped in with zero downtime (optionally after a canary
// phase, -canary-frac), and POST /v1/recal/rollback restores the previous
// generation instantly. GET /v1/recal/status reports the loop; see
// cmd/actorrecalctl for the admin CLI.
//
// Usage:
//
//	actord [-bank models/bank.json] [-addr :7690]
//	       [-recal] [-recal-interval 30s] [-recal-margin 0] [-canary-frac 0]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/greenhpc/actor/pkg/actor"
)

// swapHandler lets the listener come up before the bank has loaded: until
// the real server is swapped in, /healthz answers alive and everything
// else answers 503 "loading", so orchestrators (and the dist
// coordinator's health state machine) can tell a slow start from a dead
// process.
type swapHandler struct {
	h atomic.Pointer[http.Handler]
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

func loadingHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && r.Method == http.MethodGet {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"loading"}`)
	})
}

func main() {
	f := actor.BindFlags(flag.CommandLine, actor.FlagsBank)
	addr := flag.String("addr", ":7690", "listen address")
	recalOn := flag.Bool("recal", false, "enable the online recalibration loop")
	recalInterval := flag.Duration("recal-interval", 30*time.Second, "drift-check cadence of the recalibration loop")
	recalMargin := flag.Float64("recal-margin", 0, "relative holdout improvement a candidate must clear to be promoted")
	canaryFrac := flag.Float64("canary-frac", 0, "fraction of live traffic shadow-scored on a candidate before promotion (0 promotes immediately)")
	flag.Parse()

	var swap swapHandler
	loading := loadingHandler()
	swap.h.Store(&loading)

	// Server-side timeouts bound every connection: a client that stalls
	// mid-headers, trickles a body or never reads its response cannot wedge
	// a serving goroutine forever. Request bodies are additionally capped by
	// the handlers themselves (http.MaxBytesReader).
	hs := &http.Server{
		Addr:              *addr,
		Handler:           &swap,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()

	bank, err := f.LoadBank()
	if err != nil {
		fatal(err)
	}
	// The serving platform comes from the bank itself: its topology
	// descriptor and seed rebuild the machine the models were trained on.
	eng, err := actor.ForBank(bank)
	if err != nil {
		fatal(err)
	}
	srv, err := actor.NewServer(eng)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *recalOn {
		rec, err := srv.EnableRecalibration(actor.RecalConfig{
			Margin:     *recalMargin,
			CanaryFrac: *canaryFrac,
		})
		if err != nil {
			fatal(err)
		}
		go rec.Run(ctx, *recalInterval)
		fmt.Fprintf(os.Stderr, "actord: recalibration loop on (interval %s, margin %g, canary %g)\n",
			*recalInterval, *recalMargin, *canaryFrac)
	}

	var ready http.Handler = srv
	swap.h.Store(&ready)

	meta := bank.Meta()
	fmt.Fprintf(os.Stderr, "actord: serving %s bank (%d event sets, %d configs, topology %q) on %s\n",
		meta.Kind, len(meta.EventSets), len(meta.Configs), meta.TopologyName, *addr)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Graceful drain: readiness flips to 503 first so health-checking
		// clients stop routing here, then in-flight requests get a grace
		// window before the listener and the sweep dispatcher go away.
		srv.BeginDrain()
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shCtx)
		srv.Close()
	}()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-drained
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actord:", err)
	os.Exit(1)
}
