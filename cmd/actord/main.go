// Command actord serves a trained predictor bank over HTTP JSON: the
// online half of the paper run as a long-lived service. It loads the bank
// at startup, reconstructs the platform the bank was trained for (its
// topology descriptor rides inside the bank), and serves:
//
//	GET  /healthz     liveness probe
//	GET  /v1/bank     bank metadata (topology, configs, event sets)
//	POST /v1/predict  observed rates → ranked configurations
//	POST /v1/sweep    benchmark phases → per-placement modelled responses
//
// Concurrent sweep requests are micro-batched into shared phase-sweep
// calls over the engine's sharded memo. See docs/SERVING.md for a
// train → save → serve → curl walkthrough.
//
// Usage:
//
//	actord [-bank models/bank.json] [-addr :7690]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/greenhpc/actor/pkg/actor"
)

func main() {
	f := actor.BindFlags(flag.CommandLine, actor.FlagsBank)
	addr := flag.String("addr", ":7690", "listen address")
	flag.Parse()

	bank, err := f.LoadBank()
	if err != nil {
		fatal(err)
	}
	// The serving platform comes from the bank itself: its topology
	// descriptor and seed rebuild the machine the models were trained on.
	eng, err := actor.ForBank(bank)
	if err != nil {
		fatal(err)
	}
	srv, err := actor.NewServer(eng)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	meta := bank.Meta()
	fmt.Fprintf(os.Stderr, "actord: serving %s bank (%d event sets, %d configs, topology %q) on %s\n",
		meta.Kind, len(meta.EventSets), len(meta.Configs), meta.TopologyName, *addr)

	hs := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shCtx)
	}()
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actord:", err)
	os.Exit(1)
}
