// Command actorctl is the distributed sweep coordinator: it partitions the
// full (benchmark × phase) sweep workload of a bank's platform across a
// fleet of actord workers, retries and hedges failures, and writes the
// merged per-phase rows — byte-identical to evaluating the same workload
// in a single process, whatever the fleet does.
//
// Usage:
//
//	actorctl -bank models/bank.json \
//	    -workers http://h1:7690,http://h2:7690,http://h3:7690 [-out sweeps.json]
//
// With no -workers (or -local) the run degrades to in-process evaluation —
// the same code path a distributed run falls back to when every worker
// dies. Set ACTOR_FAULTS (see internal/dist/faultinject) to inject drops,
// delays, 5xxs, truncated bodies and worker kills into the coordinator's
// transport:
//
//	ACTOR_FAULTS="drop=0.2,err500=0.1,truncate=0.1,seed=7" actorctl ...
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/greenhpc/actor/internal/dist"
	"github.com/greenhpc/actor/internal/dist/faultinject"
	"github.com/greenhpc/actor/pkg/actor"
)

func main() {
	f := actor.BindFlags(flag.CommandLine, actor.FlagsBank)
	workers := flag.String("workers", "", "comma-separated actord base URLs (empty = in-process evaluation)")
	local := flag.Bool("local", false, "force in-process evaluation (ignore -workers)")
	timeout := flag.Duration("timeout", 15*time.Second, "per-attempt request timeout")
	retries := flag.Int("retries", 3, "times a failed shard is reassigned before in-process fallback")
	hedge := flag.Duration("hedge", 250*time.Millisecond, "minimum straggler delay before a shard is hedged")
	shardUnits := flag.Int("shard-units", 1, "(benchmark, phase) units per shard")
	out := flag.String("out", "", "write merged sweeps to this file (default stdout)")
	quiet := flag.Bool("q", false, "suppress per-event warnings (summary still printed)")
	flag.Parse()

	bank, err := f.LoadBank()
	if err != nil {
		fatal(err)
	}
	eng, err := actor.ForBank(bank)
	if err != nil {
		fatal(err)
	}

	var urls []string
	if !*local {
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, strings.TrimRight(u, "/"))
			}
		}
	}
	transport, err := faultinject.FromEnv(http.DefaultTransport, os.Getenv("ACTOR_FAULTS"))
	if err != nil {
		fatal(err)
	}
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	coord := dist.New(eng, dist.Options{
		Workers:    urls,
		Client:     &http.Client{Transport: transport},
		Timeout:    *timeout,
		Retries:    *retries,
		HedgeFloor: *hedge,
		ShardUnits: *shardUnits,
		Logf:       logf,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	sweeps, err := coord.Run(ctx)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer w.Close()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(sweeps); err != nil {
		fatal(err)
	}

	st := coord.Stats()
	fmt.Fprintf(os.Stderr, "actorctl: %d shards in %s — %d remote, %d local, %d retries, %d hedges (%d won)\n",
		st.Shards, time.Since(start).Round(time.Millisecond), st.Remote, st.Local, st.Retries, st.Hedges, st.HedgeWins)
	for _, ws := range coord.WorkerStates() {
		fmt.Fprintf(os.Stderr, "actorctl: worker %s: %s\n", ws.URL, ws.State)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actorctl:", err)
	os.Exit(1)
}
