// Command actor-live throttles real Go computation: it runs the NPB-style
// mini-kernels on the omp worker team through the facade's live path,
// wrapping every timestep in the live tuner's Begin/End instrumentation,
// and reports the concurrency level each kernel settles on plus the
// throughput at each probed level.
//
// Usage:
//
//	actor-live [-kernel NAME] [-scale N] [-steps N] [-max T] [-probes P]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"github.com/greenhpc/actor/pkg/actor"
)

func main() {
	kernel := flag.String("kernel", "", "run a single kernel (default: all)")
	scale := flag.Int("scale", 2, "problem-size scale factor")
	steps := flag.Int("steps", 30, "timesteps per kernel")
	maxT := flag.Int("max", runtime.NumCPU(), "maximum thread count to probe")
	probes := flag.Int("probes", 2, "probe executions per candidate")
	flag.Parse()

	fmt.Printf("probing 1..%d threads, %d probes each, %d timesteps per kernel\n\n",
		*maxT, *probes, *steps)
	results, err := actor.RunLive(context.Background(), actor.LiveOptions{
		Kernel:     *kernel,
		Scale:      *scale,
		Steps:      *steps,
		MaxThreads: *maxT,
		Probes:     *probes,
	})
	if err != nil {
		fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-6s locked to %d threads; %d steps in %.1f ms\n",
			r.Kernel, r.Choice, r.Steps, r.ElapsedSec*1000)
		for _, p := range r.Probes {
			fmt.Printf("         %d threads: %7.2f ms per probe set\n", p.Threads, p.ProbeSec*1000)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actor-live:", err)
	os.Exit(1)
}
