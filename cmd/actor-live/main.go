// Command actor-live throttles real Go computation: it runs the NPB-style
// mini-kernels on the omp worker team, wrapping every timestep in the
// LiveTuner's Begin/End instrumentation, and reports the concurrency level
// each kernel settles on plus the throughput at each probed level.
//
// Usage:
//
//	actor-live [-kernel NAME] [-scale N] [-steps N] [-max T] [-probes P]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/kernels"
	"github.com/greenhpc/actor/internal/omp"
)

func main() {
	kernel := flag.String("kernel", "", "run a single kernel (default: all)")
	scale := flag.Int("scale", 2, "problem-size scale factor")
	steps := flag.Int("steps", 30, "timesteps per kernel")
	maxT := flag.Int("max", runtime.NumCPU(), "maximum thread count to probe")
	probes := flag.Int("probes", 2, "probe executions per candidate")
	flag.Parse()

	var list []kernels.Kernel
	if *kernel != "" {
		k, err := kernels.ByName(*kernel, *scale)
		if err != nil {
			fatal(err)
		}
		list = []kernels.Kernel{k}
	} else {
		list = kernels.All(*scale)
	}

	fmt.Printf("probing 1..%d threads, %d probes each, %d timesteps per kernel\n\n",
		*maxT, *probes, *steps)
	for _, k := range list {
		team := omp.NewTeam(*maxT, false)
		tuner, err := core.NewLiveTuner(core.DefaultCandidates(*maxT), *probes)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		for it := 0; it < *steps; it++ {
			team.SetThreads(tuner.Begin())
			k.Step(team)
			tuner.End()
		}
		elapsed := time.Since(start)

		fmt.Printf("%-6s locked to %d threads; %d steps in %.1f ms\n",
			k.Name(), tuner.Choice(), *steps, float64(elapsed.Microseconds())/1000)
		// Per-candidate probe throughput, best first.
		pt := tuner.ProbeTimes()
		type row struct {
			threads int
			sec     float64
		}
		var rows []row
		for th, sec := range pt {
			rows = append(rows, row{th, sec})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].sec < rows[j].sec })
		for _, r := range rows {
			fmt.Printf("         %d threads: %7.2f ms per probe set\n", r.threads, r.sec*1000)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actor-live:", err)
	os.Exit(1)
}
