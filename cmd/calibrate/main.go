// Command calibrate prints the suite's modelled scaling, power and energy
// behaviour against every quantitative target quoted in the paper. It is
// the tuning harness used to calibrate the npb profiles; the same numbers
// feed EXPERIMENTS.md.
package main

import (
	"context"
	"fmt"
	"os"

	"github.com/greenhpc/actor/pkg/actor"
)

func main() {
	if err := actor.Calibrate(context.Background(), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}
