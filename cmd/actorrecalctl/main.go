// Command actorrecalctl is the admin CLI of actord's online recalibration
// loop (actord -recal):
//
//	actorrecalctl [-addr http://localhost:7690] status     # GET  /v1/recal/status
//	actorrecalctl [-addr ...] trigger                      # POST /v1/recal/trigger
//	actorrecalctl [-addr ...] promote                      # POST /v1/recal/promote
//	actorrecalctl [-addr ...] rollback                     # POST /v1/recal/rollback
//
// The response body is printed verbatim; a non-2xx status exits 1, so the
// command composes into scripts and CI gates (see scripts/recal_e2e.sh).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "http://localhost:7690", "actord base URL")
	timeout := flag.Duration("timeout", 2*time.Minute, "request timeout (trigger can retrain synchronously)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: actorrecalctl [-addr URL] [-timeout D] status|trigger|promote|rollback\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var method, path string
	switch cmd := flag.Arg(0); cmd {
	case "status":
		method, path = http.MethodGet, "/v1/recal/status"
	case "trigger", "promote", "rollback":
		method, path = http.MethodPost, "/v1/recal/"+cmd
	default:
		fmt.Fprintf(os.Stderr, "actorrecalctl: unknown command %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}

	url := strings.TrimRight(*addr, "/") + path
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		fatal(err)
	}
	resp, err := (&http.Client{Timeout: *timeout}).Do(req)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(body)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		fmt.Fprintf(os.Stderr, "actorrecalctl: %s %s: %s\n", method, path, resp.Status)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actorrecalctl:", err)
	os.Exit(1)
}
