// Command actorload is the trace-driven open-loop load harness for actord:
// it synthesizes a deterministic request trace (Poisson arrivals over a
// diurnal rate curve, heavy-tailed bursts, Zipf-popular rate vectors, an
// optional mid-run phase change — see internal/loadgen) and replays it
// against /v1/predict over real HTTP, reporting achieved throughput and
// HDR-style latency percentiles measured against each request's intended
// send time, so server-side queueing is charged to the server rather than
// silently stretching the arrival process.
//
// The same seed always produces the same trace, so two runs differ only by
// server behaviour — which is what makes the emitted metrics gateable
// (scripts/bench.sh embeds them into BENCH_<n>.json, and bench_trend -gate
// fails the build when they regress).
//
// Usage:
//
//	actorload -addr http://127.0.0.1:7690 -duration 5s -rate 2000
//	actorload -selfserve -duration 2s -rate 5000 -check -min-rps 100
//
// With -selfserve it trains a fast MLR bank, serves it from an in-process
// actord handler on a loopback listener, and drives that — the zero-setup
// mode CI's load-smoke job uses.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"github.com/greenhpc/actor/internal/loadgen"
	"github.com/greenhpc/actor/pkg/actor"
)

type metrics struct {
	ReqPerSec  float64 `json:"req_per_s"`
	P50us      float64 `json:"p50_us"`
	P99us      float64 `json:"p99_us"`
	P999us     float64 `json:"p999_us"`
	MaxUs      float64 `json:"max_us"`
	Sent       int     `json:"sent"`
	Errors     int     `json:"errors"`
	ElapsedSec float64 `json:"elapsed_sec"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:7690", "actord base URL")
	duration := flag.Duration("duration", 5*time.Second, "trace duration")
	rate := flag.Float64("rate", 2000, "mean request rate (req/s)")
	seed := flag.Int64("seed", 1, "trace seed (same seed, same trace)")
	conns := flag.Int("conns", 8, "concurrent sender connections")
	amp := flag.Float64("amp", 0.5, "diurnal rate amplitude (0 disables, 1 swings 0..2x)")
	period := flag.Duration("period", 0, "diurnal period (0: one cycle over the whole trace)")
	tail := flag.Float64("tail", 1.5, "Pareto shape for burst sizes (0 disables bursts)")
	vectors := flag.Int("vectors", 32, "distinct rate-vector population (Zipf popularity)")
	phaseChange := flag.Bool("phase-change", true, "relabel the second half of the trace with a new phase")
	jsonOut := flag.String("json", "-", "write the metrics JSON here (- for stdout)")
	selfserve := flag.Bool("selfserve", false, "train a fast bank and serve it in-process instead of targeting -addr")
	check := flag.Bool("check", false, "after the run, replay each distinct request twice and fail unless responses are byte-identical")
	p99Max := flag.Duration("p99-max", 0, "fail when p99 latency exceeds this (0: no gate)")
	minRPS := flag.Float64("min-rps", 0, "fail when achieved throughput falls below this (0: no gate)")
	flag.Parse()

	if err := run(*addr, *duration, *rate, *seed, *conns, *amp, *period, *tail,
		*vectors, *phaseChange, *jsonOut, *selfserve, *check, *p99Max, *minRPS); err != nil {
		fmt.Fprintln(os.Stderr, "actorload:", err)
		os.Exit(1)
	}
}

func run(addr string, duration time.Duration, rate float64, seed int64, conns int,
	amp float64, period time.Duration, tail float64, vectors int, phaseChange bool,
	jsonOut string, selfserve, check bool, p99Max time.Duration, minRPS float64) error {
	ctx := context.Background()
	var events []string

	if selfserve {
		fmt.Fprintln(os.Stderr, "training fast MLR bank for self-serve mode...")
		eng, err := actor.New(actor.WithFast(), actor.WithRepetitions(1), actor.WithMLR())
		if err != nil {
			return err
		}
		bank, err := eng.Train(ctx)
		if err != nil {
			return err
		}
		srv, err := actor.NewServer(eng)
		if err != nil {
			return err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		addr = "http://" + ln.Addr().String()
		events = bank.Meta().EventSets[0]
		fmt.Fprintln(os.Stderr, "serving on", addr)
	} else {
		var err error
		events, err = fetchEvents(ctx, addr)
		if err != nil {
			return err
		}
	}

	cfg := loadgen.Config{
		Seed:        seed,
		Duration:    duration,
		Rate:        rate,
		Amp:         amp,
		Period:      period,
		TailAlpha:   tail,
		Vectors:     vectors,
		PhaseChange: phaseChange,
		Events:      events,
	}
	trace := loadgen.Trace(cfg)
	fmt.Fprintf(os.Stderr, "trace: %d requests over %v (seed %d, %d vectors)\n",
		len(trace), duration, seed, vectors)

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: conns,
		MaxConnsPerHost:     0,
	}}
	url := addr + "/v1/predict"
	res, err := loadgen.Run(ctx, client, url, trace, conns)
	if err != nil {
		return err
	}

	m := metrics{
		ReqPerSec:  res.ReqPerSec(),
		P50us:      float64(res.Lat.Quantile(0.50)) / 1e3,
		P99us:      float64(res.Lat.Quantile(0.99)) / 1e3,
		P999us:     float64(res.Lat.Quantile(0.999)) / 1e3,
		MaxUs:      float64(res.Lat.Max()) / 1e3,
		Sent:       res.Sent,
		Errors:     res.Errors,
		ElapsedSec: res.Elapsed.Seconds(),
	}
	out, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if jsonOut == "-" || jsonOut == "" {
		fmt.Println(string(out))
	} else if err := os.WriteFile(jsonOut, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%.0f req/s, p50 %.0fus p99 %.0fus p999 %.0fus max %.0fus, %d/%d errors\n",
		m.ReqPerSec, m.P50us, m.P99us, m.P999us, m.MaxUs, m.Errors, m.Sent)

	if check {
		fmt.Fprintln(os.Stderr, "determinism check: replaying each distinct request twice...")
		if err := loadgen.Check(ctx, client, url, trace); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "determinism check: responses byte-identical")
	}
	if res.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", res.Errors, res.Sent)
	}
	if p99Max > 0 && m.P99us > float64(p99Max)/1e3 {
		return fmt.Errorf("p99 %.0fus exceeds gate %v", m.P99us, p99Max)
	}
	if minRPS > 0 && m.ReqPerSec < minRPS {
		return fmt.Errorf("throughput %.0f req/s below gate %.0f", m.ReqPerSec, minRPS)
	}
	return nil
}

// fetchEvents asks the target's /v1/bank for the richest event set, so the
// generated rate vectors carry exactly the mnemonics the bank consumes.
func fetchEvents(ctx context.Context, addr string) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/bank", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fetching %s/v1/bank: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/v1/bank: status %d", addr, resp.StatusCode)
	}
	var info actor.BankInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	if len(info.Meta.EventSets) == 0 {
		return nil, fmt.Errorf("bank reports no event sets")
	}
	return info.Meta.EventSets[0], nil
}
