// Command actor-predict loads a trained bank and predicts the best
// threading configuration from observed counter rates — the online
// decision step, runnable standalone for inspection and scripting.
//
// Rates arrive as JSON on stdin: a map from event mnemonic to per-cycle
// rate, with "IPC" giving the sampled instructions per cycle:
//
//	echo '{"IPC":1.1,"L2_LINES_IN":0.004,"BUS_TRANS_MEM":0.005}' | \
//	    actor-predict -bank models/bank.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/greenhpc/actor/pkg/actor"
)

func main() {
	f := actor.BindFlags(flag.CommandLine, actor.FlagsBank)
	flag.Parse()

	bank, err := f.LoadBank()
	if err != nil {
		fatal(err)
	}

	in, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal(err)
	}
	var rates actor.Rates
	if err := json.Unmarshal(in, &rates); err != nil {
		fatal(fmt.Errorf("parsing rates from stdin: %w", err))
	}

	ranked, err := bank.Predict(context.Background(), rates)
	if err != nil {
		fatal(err)
	}
	fmt.Println("predicted IPC by configuration (best first):")
	for _, p := range ranked {
		note := ""
		if p.Observed {
			note = " (observed)"
		}
		fmt.Printf("  %-4s %.3f%s\n", p.Config, p.IPC, note)
	}
	best := ranked[0]
	if best.Observed {
		fmt.Printf("recommendation: stay at the sampling configuration (observed IPC %.3f)\n", best.IPC)
	} else {
		fmt.Printf("recommendation: throttle to configuration %s\n", best.Config)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actor-predict:", err)
	os.Exit(1)
}
