// Command actor-predict loads a trained ACTOR model and predicts the
// best threading configuration from observed counter rates — the online
// decision step, runnable standalone for inspection and scripting.
//
// Rates arrive as JSON on stdin: a map from event mnemonic to per-cycle
// rate, with "IPC" giving the sampled instructions per cycle:
//
//	echo '{"IPC":1.1,"L2_LINES_IN":0.004,"BUS_TRANS_MEM":0.005}' | \
//	    actor-predict -model models/suite-12events.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/greenhpc/actor/internal/core"
	"github.com/greenhpc/actor/internal/pmu"
)

func main() {
	model := flag.String("model", "models/suite-12events.json", "path to a model written by actor-train")
	flag.Parse()

	data, err := os.ReadFile(*model)
	if err != nil {
		fatal(err)
	}
	pred, err := core.UnmarshalPredictor(data)
	if err != nil {
		fatal(err)
	}

	in, err := io.ReadAll(os.Stdin)
	if err != nil {
		fatal(err)
	}
	var raw map[string]float64
	if err := json.Unmarshal(in, &raw); err != nil {
		fatal(fmt.Errorf("parsing rates from stdin: %w", err))
	}
	rates := pmu.Rates{}
	for name, v := range raw {
		if name == "IPC" {
			rates[pmu.Instructions] = v
			continue
		}
		e, ok := pmu.EventByName(name)
		if !ok {
			fatal(fmt.Errorf("unknown event %q", name))
		}
		rates[e] = v
	}

	preds, err := pred.PredictIPC(rates)
	if err != nil {
		fatal(err)
	}
	type kv struct {
		cfg string
		ipc float64
	}
	var list []kv
	for cfg, ipc := range preds {
		list = append(list, kv{cfg, ipc})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].ipc > list[j].ipc })
	fmt.Println("predicted IPC by configuration (best first):")
	for _, e := range list {
		fmt.Printf("  %-4s %.3f\n", e.cfg, e.ipc)
	}
	best := list[0]
	if obs, ok := rates[pmu.Instructions]; ok && obs > best.ipc {
		fmt.Printf("recommendation: stay at the sampling configuration (observed IPC %.3f)\n", obs)
	} else {
		fmt.Printf("recommendation: throttle to configuration %s\n", best.cfg)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actor-predict:", err)
	os.Exit(1)
}
